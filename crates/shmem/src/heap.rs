//! The symmetric heap: one word-granular region per PE.
//!
//! All remote access in the paper's runtime goes through RDMA, which
//! delivers 64-bit-aligned non-tearing reads/writes and 64-bit atomics. We
//! model that by backing each PE region with `AtomicU64` words: bulk
//! `get`/`put` are per-word loads/stores, metadata operations are real RMW
//! atomics. This keeps racing remote copies well-defined in Rust while
//! matching the granularity the hardware provides.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::addr::SymAddr;

/// The symmetric heap shared by all PEs of a world.
pub struct SymmetricHeap {
    words_per_pe: usize,
    n_pes: usize,
    /// `n_pes * words_per_pe` words, PE-major.
    words: Box<[AtomicU64]>,
    /// Collective bump-allocation cursor (word index), shared by all PEs.
    cursor: AtomicUsize,
}

/// Words at the front of every region reserved for runtime control
/// (collective allocation broadcast, reductions, barriers). User
/// allocations start past this block.
pub(crate) const CTRL_WORDS: usize = 8;

/// Control-block slots (word offsets within the reserved prefix).
pub(crate) mod ctrl {
    /// Broadcast slot used by the collective allocator and `broadcast64`.
    pub const BCAST: usize = 0;
    /// Accumulator used by reductions (on the root PE).
    pub const REDUCE: usize = 1;
}

impl SymmetricHeap {
    /// Create a heap with `words_per_pe` words for each of `n_pes` regions.
    pub(crate) fn new(n_pes: usize, words_per_pe: usize) -> SymmetricHeap {
        assert!(n_pes > 0, "need at least one PE");
        assert!(
            words_per_pe > CTRL_WORDS,
            "heap must be larger than the control block ({CTRL_WORDS} words)"
        );
        let total = n_pes
            .checked_mul(words_per_pe)
            .expect("heap size overflows usize");
        // Allocate as plain zeroed u64s: `vec![0u64; N]` goes through
        // `alloc_zeroed`, so a multi-gigabyte heap (thousands of PEs) is
        // backed by untouched kernel zero pages and costs nothing until a
        // word is actually used. Writing `AtomicU64::new(0)` per element
        // instead would first-touch every page up front — seconds of
        // fault time at paper-scale PE counts.
        let zeroed: Box<[u64]> = vec![0u64; total].into_boxed_slice();
        // SAFETY: `AtomicU64` is guaranteed by std to have the same size,
        // alignment, and bit validity as `u64`; the allocation is uniquely
        // owned, so reinterpreting the boxed slice is sound.
        let words: Box<[AtomicU64]> =
            unsafe { Box::from_raw(Box::into_raw(zeroed) as *mut [AtomicU64]) };
        SymmetricHeap {
            words_per_pe,
            n_pes,
            words,
            cursor: AtomicUsize::new(CTRL_WORDS),
        }
    }

    /// Number of PE regions.
    #[inline]
    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Words per PE region.
    #[inline]
    pub fn words_per_pe(&self) -> usize {
        self.words_per_pe
    }

    /// Words still available to the collective allocator.
    #[inline]
    pub fn words_free(&self) -> usize {
        self.words_per_pe
            .saturating_sub(self.cursor.load(Ordering::Relaxed))
    }

    /// The backing word for (`pe`, `addr`).
    #[inline]
    pub(crate) fn word(&self, pe: usize, addr: SymAddr) -> &AtomicU64 {
        debug_assert!(pe < self.n_pes, "PE {pe} out of range ({})", self.n_pes);
        debug_assert!(
            addr.word() < self.words_per_pe,
            "symmetric address {} out of range ({})",
            addr.word(),
            self.words_per_pe
        );
        &self.words[pe * self.words_per_pe + addr.word()]
    }

    /// Bump the shared allocation cursor by `words`; returns the old cursor
    /// or `None` when the region would overflow. Called by PE 0 inside the
    /// collective allocation protocol.
    pub(crate) fn bump(&self, words: usize) -> Option<usize> {
        // Single writer by protocol (PE 0 between barriers), but use a CAS
        // loop anyway so misuse cannot corrupt the cursor.
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(words)?;
            if next > self.words_per_pe {
                return None;
            }
            match self.cursor.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur),
                Err(c) => cur = c,
            }
        }
    }

    /// Address of a control slot (same on every PE).
    #[inline]
    pub(crate) fn ctrl(slot: usize) -> SymAddr {
        debug_assert!(slot < CTRL_WORDS);
        SymAddr::new(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::Relaxed;

    #[test]
    fn regions_are_independent() {
        let h = SymmetricHeap::new(3, 64);
        let a = SymAddr::new(CTRL_WORDS);
        h.word(0, a).store(7, Relaxed);
        h.word(1, a).store(8, Relaxed);
        assert_eq!(h.word(0, a).load(Relaxed), 7);
        assert_eq!(h.word(1, a).load(Relaxed), 8);
        assert_eq!(h.word(2, a).load(Relaxed), 0);
    }

    #[test]
    fn bump_allocates_disjoint_ranges() {
        let h = SymmetricHeap::new(1, 64);
        let a = h.bump(10).unwrap();
        let b = h.bump(10).unwrap();
        assert_eq!(b, a + 10);
        assert!(h.words_free() <= 64 - 20 - CTRL_WORDS);
    }

    #[test]
    fn bump_fails_cleanly_when_exhausted() {
        let h = SymmetricHeap::new(1, 64);
        assert!(h.bump(1000).is_none());
        // A failed bump must not consume space.
        let before = h.words_free();
        assert!(h.bump(usize::MAX).is_none());
        assert_eq!(h.words_free(), before);
        assert!(h.bump(before).is_some());
        assert!(h.bump(1).is_none());
    }

    #[test]
    #[should_panic(expected = "larger than the control block")]
    fn tiny_heap_rejected() {
        let _ = SymmetricHeap::new(1, 4);
    }

    #[test]
    fn zeroed_at_start() {
        let h = SymmetricHeap::new(2, 32);
        for pe in 0..2 {
            for w in 0..32 {
                assert_eq!(h.word(pe, SymAddr::new(w)).load(Relaxed), 0);
            }
        }
    }
}
