//! Protocol op-trace capture (`WorldConfig::capture_proto`).
//!
//! When capture is enabled, every *site-annotated* one-sided operation a
//! PE issues is recorded as a [`ProtoEvent`] at its serialization point:
//! inside the virtual-time gate, timestamped with the issuer's clock
//! *before* the op's cost is charged. Because the engine applies effects
//! in nondecreasing `(clock, rank)` order, sorting the merged per-PE
//! streams by `(t_ns, issuer)` reconstructs the exact global order in
//! which the memory effects were applied — which is what a refinement
//! check needs to replay.
//!
//! Annotation happens in the protocol code (`sws-core`'s queues): a call
//! to [`crate::ShmemCtx::proto_site`] arms the *next* one-sided op on the
//! same context with an `sws_core::AtomicSite` id (this crate cannot
//! depend on `sws-core`, so the id travels as a raw `u16`). Unannotated
//! ops — termination-detector counters, collectives, workload setup
//! traffic — are not captured; neither is an op whose memory effect never
//! applied (a dropped/faulted op reaches no memory, so a trace replay
//! must not see it). With capture off, the annotation call is a no-op and
//! the op surface is untouched apart from one predictable branch.

/// "No site" sentinel for [`ProtoEvent::site`] annotations. Ops armed
/// with this value (or never armed) are not captured.
pub const NO_SITE: u16 = u16::MAX;

/// The shape of a captured one-sided operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProtoOp {
    /// `atomic_fetch_add`: `arg` = addend, `prev` = fetched value.
    FetchAdd,
    /// `atomic_swap`: `arg` = new value, `prev` = replaced value.
    Swap,
    /// `atomic_compare_swap`: `arg` = new, `arg2` = expected, `prev` =
    /// observed value (success iff `prev == arg2`).
    CompareSwap,
    /// `atomic_fetch`: `prev` = value read.
    Fetch,
    /// `atomic_set`: `arg` = stored value, `prev` = overwritten value
    /// (loaded only while capturing).
    Set,
    /// `atomic_set_nbi`: like [`ProtoOp::Set`] (the engine applies nbi
    /// effects at issue time).
    SetNbi,
    /// `atomic_add_nbi`: like [`ProtoOp::FetchAdd`].
    AddNbi,
    /// Bulk `get` (or gather): `len` words starting at `offset`; for
    /// reads of ≤ 2 words, `prev`/`arg2` hold the first/second word.
    Get,
    /// Bulk `put`: `len` words starting at `offset`; for writes of ≤ 2
    /// words, `arg`/`arg2` hold the first/second word.
    Put,
}

impl ProtoOp {
    /// Does the op block the issuer until the remote effect is visible?
    /// Mirrors `OpKind::is_blocking`: only the nbi shapes are passive —
    /// they complete at the next `quiet`. This is the classification the
    /// paper's Fig. 2 op budget counts (3 ops / 2 blocking for SWS, 6 / 5
    /// for SDC), so the telemetry layer charges spans with it.
    pub fn is_blocking(self) -> bool {
        !matches!(self, ProtoOp::SetNbi | ProtoOp::AddNbi)
    }

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtoOp::FetchAdd => "fetch_add",
            ProtoOp::Swap => "swap",
            ProtoOp::CompareSwap => "compare_swap",
            ProtoOp::Fetch => "fetch",
            ProtoOp::Set => "set",
            ProtoOp::SetNbi => "set_nbi",
            ProtoOp::AddNbi => "add_nbi",
            ProtoOp::Get => "get",
            ProtoOp::Put => "put",
        }
    }
}

/// One captured protocol operation, in issuer-local order. See the
/// module docs for the merge rule that recovers the global order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ProtoEvent {
    /// Issuer's virtual clock when the effect applied (pre-advance).
    pub t_ns: u64,
    /// PE that issued the op.
    pub issuer: u32,
    /// PE whose region the op touched.
    pub target: u32,
    /// Word offset of the (first) touched word in the target's region.
    pub offset: u32,
    /// Words touched (1 for atomics).
    pub len: u32,
    /// `AtomicSite` id (`sws_core::AtomicSite::id`); never [`NO_SITE`]
    /// in a captured event.
    pub site: u16,
    /// Operation shape.
    pub op: ProtoOp,
    /// Operand (see the [`ProtoOp`] variant docs).
    pub arg: u64,
    /// Second operand (CAS expected; second word of a 2-word get/put).
    pub arg2: u64,
    /// Pre-op value of the touched word (first word for bulk reads).
    pub prev: u64,
}

impl std::fmt::Display for ProtoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={} pe{}->pe{} site#{} {}@{}+{} arg={:#x} arg2={:#x} prev={:#x}",
            self.t_ns,
            self.issuer,
            self.target,
            self.site,
            self.op.name(),
            self.offset,
            self.len,
            self.arg,
            self.arg2,
            self.prev,
        )
    }
}

/// Merge per-PE event streams into the global serialization order.
///
/// Correct because (a) each PE's own events carry strictly increasing
/// timestamps (every gated op advances the issuer's clock by ≥ 1 ns
/// after capture), and (b) the engine admits effects in nondecreasing
/// `(clock, rank)` order, so `(t_ns, issuer)` is exactly the key the
/// gate serialized on.
pub fn merge_events<S: AsRef<[ProtoEvent]>>(per_pe: &[S]) -> Vec<ProtoEvent> {
    let mut all: Vec<ProtoEvent> = per_pe.iter().flat_map(|s| s.as_ref()).copied().collect();
    all.sort_by_key(|e| (e.t_ns, e.issuer));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, issuer: u32) -> ProtoEvent {
        ProtoEvent {
            t_ns: t,
            issuer,
            target: 0,
            offset: 9,
            len: 1,
            site: 3,
            op: ProtoOp::FetchAdd,
            arg: 1,
            arg2: 0,
            prev: 7,
        }
    }

    #[test]
    fn merge_orders_by_time_then_rank() {
        let merged = merge_events(&[
            vec![ev(5, 0), ev(9, 0)],
            vec![ev(2, 1), ev(5, 1)],
        ]);
        let key: Vec<(u64, u32)> = merged.iter().map(|e| (e.t_ns, e.issuer)).collect();
        assert_eq!(key, vec![(2, 1), (5, 0), (5, 1), (9, 0)]);
    }

    #[test]
    fn display_is_compact() {
        let s = ev(5, 2).to_string();
        assert!(s.contains("pe2->pe0"), "{s}");
        assert!(s.contains("fetch_add@9+1"), "{s}");
    }
}
