//! Deterministic exploration gate: serialize PEs and expose every gated
//! one-sided effect as a scheduling choice point.
//!
//! Where [`crate::vclock::VClock`] orders effects by *modeled cost* (one
//! deterministic schedule per run), the [`ExploreGate`] orders them by an
//! explicit **schedule**: real PE threads run their own local code freely,
//! but every shared-visible effect funnels through [`ExploreGate::gate`],
//! which blocks the PE until a central decision grants it the next turn.
//! Once every live PE is blocked at a gate (or a barrier), exactly one of
//! the pending operations is chosen — by a forced choice prefix during
//! replay, or by a default policy past it — and that PE runs alone until
//! its next gate point. The result is a fully serialized, deterministic
//! interleaving of the *production* protocol code at `AtomicSite`
//! granularity, and a recorded [`Decision`] log an explorer can branch
//! from (see `sws-check explore` in `crates/check`).
//!
//! Why this is deterministic: between grants at most one PE executes
//! shared-visible effects; the windows where several PEs run concurrently
//! (before the first gate point, after a barrier release) execute only
//! PE-local code on disjoint own-region words, so neither results nor the
//! next decision's enabled set depend on thread timing. Clocks are per-PE
//! and advance only with the owning PE's own ops, so `now_ns` reads are
//! schedule-deterministic too.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::lock::{Condvar, Mutex};
use crate::net::OpKind;
use crate::proto::NO_SITE;

/// Panic message raised in PEs blocked on a gate when a peer poisons the
/// world (mirrors the vclock poison message shape).
pub const POISON_MSG: &str = "explore world poisoned: a peer PE panicked";

/// Panic message raised when a schedule exceeds its step budget. Distinct
/// from [`POISON_MSG`] so the explorer can classify truncation (an
/// exhausted budget, usually a spin loop the schedule starves) apart from
/// real failures.
pub const TRUNCATED_MSG: &str = "exploration step budget exceeded: schedule truncated";

/// Descriptor of one pending gated operation — everything the explorer's
/// dependence relation needs: the words the op touches in whose region,
/// whether it writes, and the protocol site (if the op was annotated via
/// `ShmemCtx::proto_site`; [`NO_SITE`] for control-plane traffic).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OpDesc {
    /// `sws_core::AtomicSite::id()` of the issuing protocol site, or
    /// [`NO_SITE`] for unannotated ops (collectives, TD counters, setup).
    pub site: u16,
    /// PE whose region the op touches.
    pub target: u32,
    /// First word offset touched in the target's region.
    pub offset: u32,
    /// Number of words touched (over-approximated for strided/gather
    /// shapes: the contiguous cover, which can only add dependences,
    /// never hide one).
    pub len: u32,
    /// Does the op write (RMW counts as a write; a failed CAS is
    /// over-approximated as one)?
    pub writes: bool,
}

impl OpDesc {
    /// Do two ops *conflict* — touch overlapping words of the same region
    /// with at least one writer? Reordering a non-conflicting adjacent
    /// pair commutes, which is what the explorer's pruning relies on.
    pub fn conflicts(&self, other: &OpDesc) -> bool {
        if self.target != other.target || !(self.writes || other.writes) {
            return false;
        }
        let a = self.offset as u64..self.offset as u64 + self.len as u64;
        let b = other.offset as u64..other.offset as u64 + other.len as u64;
        a.start < b.end && b.start < a.end
    }
}

/// Does this op kind write target memory? (Used to build [`OpDesc`].)
pub fn kind_writes(kind: OpKind) -> bool {
    !matches!(kind, OpKind::Get | OpKind::AtomicFetch)
}

/// One scheduling decision: who was runnable, who ran.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// PE whose turn led into this decision (`None` for the first).
    pub prev: Option<u32>,
    /// Pending ops at the decision point, ascending PE rank.
    pub enabled: Vec<(u32, OpDesc)>,
    /// Index into `enabled` that was granted.
    pub chosen: u32,
}

/// Gate configuration for one schedule execution.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Forced choice indices for the first `prefix.len()` decisions
    /// (each clamped into the enabled range); past the prefix the default
    /// policy picks.
    pub prefix: Vec<u32>,
    /// Poison the world with [`TRUNCATED_MSG`] after this many decisions.
    pub max_steps: u64,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            prefix: Vec::new(),
            max_steps: 200_000,
        }
    }
}

/// What one schedule execution recorded.
#[derive(Clone, Debug, Default)]
pub struct ExploreTrace {
    /// Every decision, in order.
    pub decisions: Vec<Decision>,
    /// Did the run hit the step budget (and poison itself)?
    pub truncated: bool,
}

/// A pending PE left ungranted for this many decisions is *starving*
/// and takes the next turn unconditionally. This is the gate's only
/// fairness guarantee strong enough to survive adversarial grant
/// patterns: consecutive-grant streaks cannot detect a pair of PEs
/// interleaving 1:1 while a third — possibly a lock holder — waits
/// forever.
const STARVE_AGE: u64 = 64;

/// A PE is treated as *spinning* only once this many consecutive grants
/// issued it a byte-identical op. One repeat is routinely productive — a
/// reconcile pass reads the stealval twice, a drain loop polls a counter
/// it is about to observe change — and rotating away on the first repeat
/// steals the progressing PE's turn exactly when it is mid-protocol.
const SPIN_RUN: u32 = 2;

#[derive(Clone, Debug, PartialEq, Eq)]
enum PeState {
    /// Executing local code (or its granted effect).
    Running,
    /// Blocked at a gate with this pending op.
    Blocked(OpDesc),
    /// Waiting at a barrier.
    InBarrier,
    /// Returned from the SPMD closure.
    Done,
}

struct State {
    status: Vec<PeState>,
    /// PEs in `Running` state.
    running: usize,
    /// Per-PE grant flags (a blocked PE owns the next turn).
    granted: Vec<bool>,
    /// Per-PE logical clocks (ns), advanced only by the owning PE.
    clock: Vec<u64>,
    /// Descriptor granted at each PE's most recent grant. A PE whose
    /// pending op equals it is in a *spin retry* (a failed CAS, a poll
    /// that saw no change) — re-granting it before anyone else runs
    /// cannot change its outcome.
    last_desc: Vec<Option<OpDesc>>,
    /// Consecutive grants of a byte-identical op, per PE. Only runs of
    /// [`SPIN_RUN`] or more mark the PE as spinning.
    spin_run: Vec<u32>,
    /// Barrier release generation.
    generation: u64,
    /// Forced choices + cursor.
    prefix: Vec<u32>,
    cursor: usize,
    /// Recorded decisions.
    decisions: Vec<Decision>,
    /// Last granted PE.
    last: Option<u32>,
    /// Decision index of each PE's most recent grant (0 if never).
    last_grant: Vec<u64>,
    max_steps: u64,
    truncated: bool,
}

/// The exploration scheduler's serialization point. Build one per
/// schedule execution, pass it to `WorldConfig::with_explore`, and read
/// the decision log back with [`ExploreGate::take_trace`] after
/// `run_world` returns.
pub struct ExploreGate {
    inner: Mutex<State>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl std::fmt::Debug for ExploreGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreGate").finish_non_exhaustive()
    }
}

impl ExploreGate {
    /// A gate for `n_pes` PEs running one schedule under `cfg`.
    pub fn new(n_pes: usize, cfg: ExploreConfig) -> ExploreGate {
        ExploreGate {
            inner: Mutex::new(State {
                status: vec![PeState::Running; n_pes],
                running: n_pes,
                granted: vec![false; n_pes],
                clock: vec![0; n_pes],
                last_desc: vec![None; n_pes],
                spin_run: vec![0; n_pes],
                generation: 0,
                prefix: cfg.prefix,
                cursor: 0,
                decisions: Vec::new(),
                last: None,
                last_grant: vec![0; n_pes],
                max_steps: cfg.max_steps,
                truncated: false,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Block until the scheduler grants this PE the next turn; on return
    /// the caller is the only running PE and applies its effect.
    ///
    /// # Panics
    /// With [`POISON_MSG`] if a peer poisoned the world while waiting, or
    /// with [`TRUNCATED_MSG`] if the schedule exhausted its step budget.
    pub fn gate(&self, pe: usize, desc: OpDesc) {
        let mut g = self.inner.lock();
        self.check_poison(&g);
        g.status[pe] = PeState::Blocked(desc);
        g.running -= 1;
        if g.running == 0 {
            self.on_all_blocked(&mut g);
        }
        while !g.granted[pe] {
            self.cv.wait(&mut g);
            self.check_poison(&g);
        }
        g.granted[pe] = false;
    }

    /// This PE's logical clock (ns).
    pub fn now(&self, pe: usize) -> u64 {
        self.inner.lock().clock[pe]
    }

    /// Advance this PE's logical clock (local compute, post-effect op
    /// charges). Not a scheduling point.
    pub fn advance(&self, pe: usize, dt: u64) {
        self.inner.lock().clock[pe] += dt;
    }

    /// Barrier: park until every live PE has arrived, then release all of
    /// them simultaneously (they run local code concurrently until their
    /// next gate points). Clocks jump to the max entry clock plus `cost`.
    pub fn barrier(&self, pe: usize, cost: u64) {
        let mut g = self.inner.lock();
        self.check_poison(&g);
        g.status[pe] = PeState::InBarrier;
        g.running -= 1;
        let gen = g.generation;
        if g.running == 0 {
            self.on_all_blocked(&mut g);
        }
        while g.generation == gen && g.status[pe] == PeState::InBarrier {
            self.cv.wait(&mut g);
            self.check_poison(&g);
        }
        g.clock[pe] += cost;
    }

    /// Mark this PE finished (its SPMD closure returned).
    pub fn finish(&self, pe: usize) {
        let mut g = self.inner.lock();
        g.status[pe] = PeState::Done;
        g.running -= 1;
        if g.running == 0 {
            self.on_all_blocked(&mut g);
        }
    }

    /// Poison the world: blocked PEs panic out of their gates.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        let _g = self.inner.lock();
        self.cv.notify_all();
    }

    /// Whether a peer poisoned the world.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// The decision log of the finished run. Call after `run_world`
    /// returns (all PE threads joined).
    pub fn take_trace(&self) -> ExploreTrace {
        let mut g = self.inner.lock();
        ExploreTrace {
            decisions: std::mem::take(&mut g.decisions),
            truncated: g.truncated,
        }
    }

    fn check_poison(&self, g: &State) {
        if self.is_poisoned() {
            if g.truncated {
                panic!("{TRUNCATED_MSG}");
            }
            panic!("{POISON_MSG}");
        }
    }

    /// Every live PE is parked (`running == 0`): release the barrier if
    /// everyone left is in it, otherwise make a scheduling decision among
    /// the gate-blocked PEs.
    fn on_all_blocked(&self, g: &mut State) {
        let blocked: Vec<(u32, OpDesc)> = g
            .status
            .iter()
            .enumerate()
            .filter_map(|(pe, s)| match s {
                PeState::Blocked(d) => Some((pe as u32, *d)),
                _ => None,
            })
            .collect();
        if blocked.is_empty() {
            // All remaining PEs are in the barrier (or everyone is done):
            // release the barrier generation.
            let entry_max = g
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == PeState::InBarrier)
                .map(|(pe, _)| g.clock[pe])
                .max();
            let Some(entry_max) = entry_max else { return };
            for pe in 0..g.status.len() {
                if g.status[pe] == PeState::InBarrier {
                    g.clock[pe] = entry_max;
                    g.status[pe] = PeState::Running;
                    g.running += 1;
                }
            }
            g.generation += 1;
            self.cv.notify_all();
            return;
        }

        if g.decisions.len() as u64 >= g.max_steps {
            g.truncated = true;
            self.poisoned.store(true, Ordering::Release);
            self.cv.notify_all();
            return;
        }

        let chosen = match g.prefix.get(g.cursor) {
            Some(&forced) => (forced as usize).min(blocked.len() - 1),
            None => self.default_pick(g, &blocked),
        };
        g.cursor += 1;
        let pe = blocked[chosen].0;
        g.last_grant[pe as usize] = g.decisions.len() as u64;
        if g.last_desc[pe as usize] == Some(blocked[chosen].1) {
            g.spin_run[pe as usize] += 1;
        } else {
            g.spin_run[pe as usize] = 0;
        }
        g.last_desc[pe as usize] = Some(blocked[chosen].1);
        g.decisions.push(Decision {
            prev: g.last,
            enabled: blocked,
            chosen: chosen as u32,
        });
        g.last = Some(pe);
        g.status[pe as usize] = PeState::Running;
        g.running += 1;
        g.granted[pe as usize] = true;
        self.cv.notify_all();
    }

    /// Default (non-forced) policy: keep running the previous PE while it
    /// is pending and making progress — this minimizes preemptions, so
    /// the default schedule through any decision subtree is the cheapest
    /// one under the explorer's preemption bound — with three liveness
    /// amendments, all pure functions of gate state (determinism holds):
    ///
    /// * **Aging.** A pending PE ungranted for [`STARVE_AGE`] decisions
    ///   takes the turn unconditionally (oldest first, lowest rank on
    ///   ties). This is the only rule strong enough to free a parked
    ///   lock *holder* when two other PEs interleave 1:1 around it —
    ///   consecutive-grant streak detection never fires in that pattern.
    /// * **Spin retries rotate away.** A PE whose pending op is
    ///   byte-identical to its previously granted op (a failed lock CAS,
    ///   a poll that saw no change) cannot change its outcome until
    ///   someone else runs; the turn passes cyclically (next pending
    ///   rank, wrapping). Only a run of [`SPIN_RUN`] identical grants
    ///   qualifies — a single repeated read is routinely productive
    ///   (reconcile reads the stealval twice back to back), and rotating
    ///   on the first repeat would preempt mid-protocol.
    /// * **Waiting spinners interleave 1:1** with a progressing PE, so a
    ///   contender retries inside every window the progressor opens
    ///   (e.g. the instant a contended lock is released); fixed-stride
    ///   yields can otherwise align with the holder's critical section
    ///   forever — a scheduler-induced livelock.
    fn default_pick(&self, g: &State, blocked: &[(u32, OpDesc)]) -> usize {
        let now = g.decisions.len() as u64;
        if let Some((j, _)) = blocked
            .iter()
            .enumerate()
            .map(|(j, &(pe, _))| (j, now.saturating_sub(g.last_grant[pe as usize])))
            .filter(|&(_, age)| age >= STARVE_AGE)
            .max_by_key(|&(j, age)| (age, std::cmp::Reverse(j)))
        {
            return j;
        }
        // `blocked` is in ascending PE rank; first entry above `from`,
        // wrapping to the lowest.
        let cyclic_next = |from: u32| -> usize {
            blocked
                .iter()
                .position(|&(pe, _)| pe > from)
                .unwrap_or(0)
        };
        let is_spin = |pe: u32, d: &OpDesc| {
            g.last_desc[pe as usize].as_ref() == Some(d)
                && g.spin_run[pe as usize] >= SPIN_RUN
        };
        let Some(l) = g.last else { return 0 };
        let Some(li) = blocked.iter().position(|&(pe, _)| pe == l) else {
            return cyclic_next(l);
        };
        let (_, ld) = blocked[li];
        if is_spin(l, &ld) {
            return cyclic_next(l);
        }
        // `l` is progressing: give one waiting spinner its retry first.
        let start = cyclic_next(l);
        for k in 0..blocked.len() {
            let j = (start + k) % blocked.len();
            let (pe, d) = blocked[j];
            if pe != l && is_spin(pe, &d) {
                return j;
            }
        }
        li
    }
}

/// An unannotated single-word descriptor (control-plane ops).
pub fn plain_desc(target: usize, offset: u32, len: u32, writes: bool) -> OpDesc {
    OpDesc {
        site: NO_SITE,
        target: target as u32,
        offset,
        len,
        writes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(target: u32, offset: u32, len: u32, writes: bool) -> OpDesc {
        OpDesc {
            site: NO_SITE,
            target,
            offset,
            len,
            writes,
        }
    }

    #[test]
    fn conflicts_need_overlap_and_a_writer() {
        assert!(d(0, 4, 1, true).conflicts(&d(0, 4, 1, false)));
        assert!(d(0, 2, 4, true).conflicts(&d(0, 5, 2, true)));
        assert!(!d(0, 4, 1, false).conflicts(&d(0, 4, 1, false)), "two reads");
        assert!(!d(0, 4, 1, true).conflicts(&d(1, 4, 1, true)), "regions differ");
        assert!(!d(0, 4, 2, true).conflicts(&d(0, 6, 2, true)), "disjoint words");
    }

    #[test]
    fn default_policy_prefers_last_then_rotates() {
        let gate = ExploreGate::new(3, ExploreConfig::default());
        let mut g = gate.inner.lock();
        let blocked = vec![(0, d(0, 0, 1, true)), (2, d(0, 1, 1, true))];
        assert_eq!(gate.default_pick(&g, &blocked), 0, "no last yet");
        g.last = Some(2);
        assert_eq!(gate.default_pick(&g, &blocked), 1, "continue last");
        g.last_desc[2] = Some(d(0, 1, 1, true));
        assert_eq!(
            gate.default_pick(&g, &blocked),
            1,
            "a short identical run is not yet a spin"
        );
        g.spin_run[2] = SPIN_RUN;
        assert_eq!(
            gate.default_pick(&g, &blocked),
            0,
            "spin retry rotates away"
        );
        g.last_desc[2] = None;
        g.spin_run[2] = 0;
        g.last_desc[0] = Some(d(0, 0, 1, true));
        g.spin_run[0] = SPIN_RUN;
        assert_eq!(
            gate.default_pick(&g, &blocked),
            0,
            "waiting spinner interleaved while pe2 progresses"
        );
    }

    #[test]
    fn spin_yields_rotate_cyclically_over_three_pes() {
        let gate = ExploreGate::new(4, ExploreConfig::default());
        let mut g = gate.inner.lock();
        let blocked = vec![
            (0, d(0, 0, 1, true)),
            (1, d(0, 1, 1, true)),
            (3, d(0, 2, 1, true)),
        ];
        g.last = Some(0);
        g.last_desc[0] = Some(d(0, 0, 1, true));
        g.spin_run[0] = SPIN_RUN;
        assert_eq!(gate.default_pick(&g, &blocked), 1);
        g.last = Some(1);
        g.last_desc[1] = Some(d(0, 1, 1, true));
        g.spin_run[1] = SPIN_RUN;
        assert_eq!(gate.default_pick(&g, &blocked), 2);
        g.last = Some(3);
        g.last_desc[3] = Some(d(0, 2, 1, true));
        g.spin_run[3] = SPIN_RUN;
        assert_eq!(gate.default_pick(&g, &blocked), 0, "wraps past top rank");
    }

    #[test]
    fn starving_pe_preempts_an_interleaving_pair() {
        let gate = ExploreGate::new(4, ExploreConfig::default());
        let mut g = gate.inner.lock();
        for _ in 0..STARVE_AGE {
            g.decisions.push(Decision {
                prev: None,
                enabled: Vec::new(),
                chosen: 0,
            });
        }
        let blocked = vec![
            (0, d(0, 0, 1, true)),
            (1, d(0, 1, 1, true)),
            (3, d(0, 2, 1, true)),
        ];
        // pe1 and pe3 have been trading grants; pe0 has waited STARVE_AGE
        // decisions and takes the turn even though pe3 is progressing.
        g.last = Some(3);
        g.last_grant[0] = 0;
        g.last_grant[1] = STARVE_AGE - 1;
        g.last_grant[3] = STARVE_AGE - 2;
        assert_eq!(gate.default_pick(&g, &blocked), 0, "oldest pending wins");
        // Ties on age break toward the lowest rank.
        g.last_grant[3] = 0;
        assert_eq!(gate.default_pick(&g, &blocked), 0, "tie goes to low rank");
    }
}
