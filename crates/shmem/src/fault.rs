//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is a seeded description of everything that will go
//! wrong during a run: transient *drops* (an op fails with
//! [`OpError::Retriable`](crate::OpError)), added *delays*, target-side
//! *stall windows* (ops against the target time out while its virtual
//! clock is inside the window), and *crash-stop* points (a PE stops
//! executing at a virtual time; once it has drained in-flight protocol
//! state and marked itself down, every later op against it fails with
//! [`OpError::TargetDown`](crate::OpError)).
//!
//! The plan is attached to a [`WorldConfig`](crate::WorldConfig); each PE
//! gets a [`FaultInjector`] whose decisions are drawn from a per-PE
//! SplitMix64 stream of the plan seed. In virtual mode the whole schedule
//! is therefore a pure function of `(plan, workload)` — the same seed
//! replays the same faults at the same virtual instants, which is what the
//! chaos suite relies on.
//!
//! Fault decisions charge time but never apply the memory effect of a
//! failed op, mirroring a lost packet on a real RDMA fabric. Local
//! (same-PE) accesses and collectives are never injected: the model is a
//! faulty *network*, not faulty memory.

use crate::error::OpResult;
use crate::net::OpKind;
use crate::rng::SplitMix64;
use std::cell::RefCell;

/// Which operation kinds a rule applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Every remote operation.
    All,
    /// Remote atomics (fetch-add, swap, compare-swap, fetch, set, and
    /// their non-blocking forms).
    Atomics,
    /// Blocking and strided gets.
    Gets,
    /// Blocking, strided, and non-blocking puts.
    Puts,
    /// Exactly one operation kind.
    Kind(OpKind),
}

impl OpClass {
    /// Does this class cover `kind`?
    pub fn matches(self, kind: OpKind) -> bool {
        match self {
            OpClass::All => !matches!(kind, OpKind::Barrier | OpKind::Quiet),
            OpClass::Atomics => kind.is_atomic(),
            OpClass::Gets => matches!(kind, OpKind::Get),
            OpClass::Puts => matches!(kind, OpKind::Put | OpKind::PutNbi),
            OpClass::Kind(k) => k == kind,
        }
    }
}

/// Which target PEs a rule applies to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TargetSel {
    /// Any remote target.
    Any,
    /// Only ops against one specific PE.
    Pe(usize),
}

impl TargetSel {
    fn matches(self, target: usize) -> bool {
        match self {
            TargetSel::Any => true,
            TargetSel::Pe(p) => p == target,
        }
    }
}

/// Transiently fail matching ops with probability `prob`.
#[derive(Copy, Clone, Debug)]
pub struct DropRule {
    /// Operation kinds covered.
    pub class: OpClass,
    /// Target PEs covered.
    pub target: TargetSel,
    /// Per-op failure probability in `[0, 1]`.
    pub prob: f64,
    /// Stop injecting after this many failures (`u64::MAX` = unlimited).
    pub max_failures: u64,
}

/// Add `extra_ns` of latency to matching ops with probability `prob`.
#[derive(Copy, Clone, Debug)]
pub struct DelayRule {
    /// Operation kinds covered.
    pub class: OpClass,
    /// Target PEs covered.
    pub target: TargetSel,
    /// Per-op delay probability in `[0, 1]`.
    pub prob: f64,
    /// Added latency in nanoseconds.
    pub extra_ns: u64,
}

/// Make `pe` unresponsive for `[from_ns, from_ns + dur_ns)`: blocking ops
/// issued against it while the issuer's clock is inside the window fail
/// with [`OpError::Timeout`](crate::OpError).
#[derive(Copy, Clone, Debug)]
pub struct StallRule {
    /// The stalled PE.
    pub pe: usize,
    /// Window start (virtual ns; wall ns in threaded mode).
    pub from_ns: u64,
    /// Window length in nanoseconds.
    pub dur_ns: u64,
}

/// Crash-stop `pe` at virtual time `at_ns`: the PE stops taking new work
/// at its next idle point after `at_ns`, drains its steal-protocol state,
/// marks itself down, and exits. Ops against a down PE fail with
/// [`OpError::TargetDown`](crate::OpError).
#[derive(Copy, Clone, Debug)]
pub struct CrashRule {
    /// The crashing PE.
    pub pe: usize,
    /// Earliest virtual time the crash takes effect.
    pub at_ns: u64,
}

/// A complete, seeded fault schedule for one world.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for all probabilistic rules (per-PE streams are derived).
    pub seed: u64,
    /// Time charged to an op that fails (models a detection timeout).
    /// Zero selects a default of 20µs.
    pub timeout_ns: u64,
    /// Transient-failure rules.
    pub drops: Vec<DropRule>,
    /// Added-latency rules.
    pub delays: Vec<DelayRule>,
    /// Target unresponsiveness windows.
    pub stalls: Vec<StallRule>,
    /// Crash-stop points.
    pub crashes: Vec<CrashRule>,
}

const DEFAULT_TIMEOUT_NS: u64 = 20_000;

impl FaultPlan {
    /// An empty plan: injects nothing, and [`FaultPlan::is_active`] is
    /// false, so every protocol runs its fault-free fast path.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan carrying a seed, ready for `with_*` builders.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add an unlimited transient-failure rule.
    pub fn with_drop(mut self, class: OpClass, target: TargetSel, prob: f64) -> FaultPlan {
        self.drops.push(DropRule {
            class,
            target,
            prob,
            max_failures: u64::MAX,
        });
        self
    }

    /// Add a transient-failure rule capped at `max_failures` injections.
    pub fn with_drop_limited(
        mut self,
        class: OpClass,
        target: TargetSel,
        prob: f64,
        max_failures: u64,
    ) -> FaultPlan {
        self.drops.push(DropRule {
            class,
            target,
            prob,
            max_failures,
        });
        self
    }

    /// Add an added-latency rule.
    pub fn with_delay(
        mut self,
        class: OpClass,
        target: TargetSel,
        prob: f64,
        extra_ns: u64,
    ) -> FaultPlan {
        self.delays.push(DelayRule {
            class,
            target,
            prob,
            extra_ns,
        });
        self
    }

    /// Add a stall window for `pe`.
    pub fn with_stall(mut self, pe: usize, from_ns: u64, dur_ns: u64) -> FaultPlan {
        self.stalls.push(StallRule { pe, from_ns, dur_ns });
        self
    }

    /// Add a crash-stop point for `pe`.
    pub fn with_crash(mut self, pe: usize, at_ns: u64) -> FaultPlan {
        self.crashes.push(CrashRule { pe, at_ns });
        self
    }

    /// Override the failure-detection timeout charge.
    pub fn with_timeout_ns(mut self, timeout_ns: u64) -> FaultPlan {
        self.timeout_ns = timeout_ns;
        self
    }

    /// Does this plan inject anything at all? Inactive plans leave every
    /// op count and protocol decision bit-identical to a world with no
    /// plan attached.
    pub fn is_active(&self) -> bool {
        !(self.drops.is_empty()
            && self.delays.is_empty()
            && self.stalls.is_empty()
            && self.crashes.is_empty())
    }

    /// Time charged to failed ops.
    pub fn timeout_ns(&self) -> u64 {
        if self.timeout_ns == 0 {
            DEFAULT_TIMEOUT_NS
        } else {
            self.timeout_ns
        }
    }

    /// Earliest crash point scheduled for `pe`, if any.
    pub fn crash_at(&self, pe: usize) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.pe == pe)
            .map(|c| c.at_ns)
            .min()
    }

    /// Is the issuer-side clock `now_ns` inside a stall window of
    /// `target`?
    pub fn target_stalled(&self, target: usize, now_ns: u64) -> bool {
        self.stalls
            .iter()
            .any(|s| s.pe == target && now_ns >= s.from_ns && now_ns < s.from_ns + s.dur_ns)
    }

    /// Check rule sanity against a world of `n_pes` PEs.
    pub fn validate(&self, n_pes: usize) -> Result<(), String> {
        for r in &self.drops {
            if !(0.0..=1.0).contains(&r.prob) {
                return Err(format!("drop probability {} outside [0, 1]", r.prob));
            }
            if let TargetSel::Pe(p) = r.target {
                if p >= n_pes {
                    return Err(format!("drop rule targets PE {p} of {n_pes}"));
                }
            }
        }
        for r in &self.delays {
            if !(0.0..=1.0).contains(&r.prob) {
                return Err(format!("delay probability {} outside [0, 1]", r.prob));
            }
            if let TargetSel::Pe(p) = r.target {
                if p >= n_pes {
                    return Err(format!("delay rule targets PE {p} of {n_pes}"));
                }
            }
        }
        for r in &self.stalls {
            if r.pe >= n_pes {
                return Err(format!("stall rule names PE {} of {n_pes}", r.pe));
            }
        }
        for r in &self.crashes {
            if r.pe >= n_pes {
                return Err(format!("crash rule names PE {} of {n_pes}", r.pe));
            }
        }
        Ok(())
    }
}

/// Retry policy for fallible one-sided ops: bounded attempts with
/// exponential backoff and multiplicative jitter. Backoff is charged as
/// compute time, so in virtual mode retries advance the clock and the
/// whole schedule stays deterministic.
#[derive(Copy, Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ns: u64,
    /// Backoff cap.
    pub max_backoff_ns: u64,
    /// Jitter as a percentage of the backoff (0–100).
    pub jitter_pct: u8,
}

impl RetryPolicy {
    /// Default policy for thieves: a handful of quick retries.
    pub fn default_thief() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 2_000,
            max_backoff_ns: 64_000,
            jitter_pct: 50,
        }
    }

    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ns: 0,
            max_backoff_ns: 0,
            jitter_pct: 0,
        }
    }

    /// Backoff to charge before retry number `attempt` (1-based: the
    /// backoff after the first failure is `backoff_ns(1, ..)`). The
    /// exponential shift saturates and the *jittered* total is clamped to
    /// the ceiling `max(max_backoff_ns, base_backoff_ns)`, so no attempt
    /// count or parameter choice can overflow or produce an unbounded
    /// delay.
    pub fn backoff_ns(&self, attempt: u32, rng: &mut SplitMix64) -> u64 {
        let ceiling = self.max_backoff_ns.max(self.base_backoff_ns);
        let shift = attempt.saturating_sub(1).min(20);
        let base = self
            .base_backoff_ns
            .saturating_mul(1u64 << shift)
            .min(ceiling);
        if self.jitter_pct == 0 || base == 0 {
            return base;
        }
        // Uniform in [base, base + jitter_pct% of base], capped at the
        // ceiling. Saturating throughout: `base * pct` overflows u64 for
        // extreme policies (base near u64::MAX), and the draw must still
        // consume exactly one stream position whenever spread > 0 so
        // in-range policies keep their decision sequences.
        let spread = base.saturating_mul(self.jitter_pct as u64) / 100;
        let jittered = base.saturating_add(if spread > 0 {
            rng.below(spread.saturating_add(1))
        } else {
            0
        });
        jittered.min(ceiling)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::default_thief()
    }
}

/// What the injector decided for one op, before target-state checks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum PreDecision {
    /// Apply the op, with this much added latency.
    Proceed { extra_ns: u64 },
    /// Drop the op: fail with `Retriable`, charge the timeout.
    Drop,
}

/// Per-PE fault sampler. Drawn from a SplitMix64 stream of the plan seed
/// keyed by the issuing PE, so each PE's decision sequence depends only on
/// its own op sequence — deterministic under virtual time.
pub struct FaultInjector {
    plan: std::sync::Arc<FaultPlan>,
    rng: RefCell<SplitMix64>,
    drop_counts: RefCell<Vec<u64>>,
}

impl FaultInjector {
    pub(crate) fn new(plan: std::sync::Arc<FaultPlan>, pe: usize) -> FaultInjector {
        let rng = SplitMix64::stream(plan.seed, 0xFA17_0000 ^ pe as u64);
        let n_rules = plan.drops.len();
        FaultInjector {
            plan,
            rng: RefCell::new(rng),
            drop_counts: RefCell::new(vec![0; n_rules]),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Sample drop/delay rules for one op. Target-down and stall checks
    /// happen later, inside the serialized (gated) window, where the
    /// issuer's clock and the target's down flag are exact.
    pub(crate) fn predecide(&self, kind: OpKind, target: usize) -> PreDecision {
        let mut rng = self.rng.borrow_mut();
        let mut counts = self.drop_counts.borrow_mut();
        for (i, r) in self.plan.drops.iter().enumerate() {
            if r.class.matches(kind) && r.target.matches(target) && counts[i] < r.max_failures {
                // Draw even when prob is 0/1 so rule sets with different
                // probabilities still consume identical stream positions.
                let hit = rng.chance(r.prob);
                if hit {
                    counts[i] += 1;
                    return PreDecision::Drop;
                }
            }
        }
        let mut extra = 0u64;
        for r in &self.plan.delays {
            if r.class.matches(kind) && r.target.matches(target) && rng.chance(r.prob) {
                extra = extra.max(r.extra_ns);
            }
        }
        PreDecision::Proceed { extra_ns: extra }
    }
}

/// Run `op` under `policy`, charging backoff between attempts via
/// `charge` (typically `|ns| ctx.compute(ns)`). Returns the first success,
/// or the last error once attempts are exhausted or a non-retriable error
/// (`TargetDown`) is seen. `on_retry` is invoked once per retry, letting
/// callers count retries in their stats.
pub fn retry_op<T>(
    policy: &RetryPolicy,
    rng: &mut SplitMix64,
    mut charge: impl FnMut(u64),
    mut on_retry: impl FnMut(),
    mut op: impl FnMut() -> OpResult<T>,
) -> OpResult<T> {
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if !e.is_retriable() || attempt >= policy.max_attempts.max(1) => {
                return Err(e);
            }
            Err(_) => {
                let back = policy.backoff_ns(attempt, rng);
                if back > 0 {
                    charge(back);
                }
                on_retry();
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::OpError;
    use std::sync::Arc;

    #[test]
    fn op_class_matching() {
        assert!(OpClass::All.matches(OpKind::Get));
        assert!(!OpClass::All.matches(OpKind::Barrier));
        assert!(!OpClass::All.matches(OpKind::Quiet));
        assert!(OpClass::Atomics.matches(OpKind::AtomicFetchAdd));
        assert!(OpClass::Atomics.matches(OpKind::AtomicSetNbi));
        assert!(!OpClass::Atomics.matches(OpKind::Get));
        assert!(OpClass::Gets.matches(OpKind::Get));
        assert!(OpClass::Puts.matches(OpKind::PutNbi));
        assert!(OpClass::Kind(OpKind::Get).matches(OpKind::Get));
        assert!(!OpClass::Kind(OpKind::Get).matches(OpKind::Put));
    }

    #[test]
    fn empty_plan_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert!(!FaultPlan::seeded(9).is_active());
        let p = FaultPlan::seeded(9).with_drop(OpClass::All, TargetSel::Any, 0.0);
        assert!(p.is_active(), "a rule with prob 0 still marks the plan active");
    }

    #[test]
    fn stall_window_bounds() {
        let p = FaultPlan::seeded(1).with_stall(2, 1_000, 500);
        assert!(!p.target_stalled(2, 999));
        assert!(p.target_stalled(2, 1_000));
        assert!(p.target_stalled(2, 1_499));
        assert!(!p.target_stalled(2, 1_500));
        assert!(!p.target_stalled(1, 1_200));
    }

    #[test]
    fn crash_at_takes_earliest() {
        let p = FaultPlan::seeded(1).with_crash(3, 9_000).with_crash(3, 4_000);
        assert_eq!(p.crash_at(3), Some(4_000));
        assert_eq!(p.crash_at(2), None);
    }

    #[test]
    fn validation_rejects_bad_rules() {
        assert!(FaultPlan::seeded(1)
            .with_drop(OpClass::All, TargetSel::Any, 1.5)
            .validate(4)
            .is_err());
        assert!(FaultPlan::seeded(1)
            .with_drop(OpClass::All, TargetSel::Pe(4), 0.1)
            .validate(4)
            .is_err());
        assert!(FaultPlan::seeded(1).with_crash(7, 100).validate(4).is_err());
        assert!(FaultPlan::seeded(1)
            .with_drop(OpClass::All, TargetSel::Any, 0.5)
            .with_stall(1, 0, 100)
            .with_crash(3, 100)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let plan = Arc::new(FaultPlan::seeded(77).with_drop(OpClass::All, TargetSel::Any, 0.3));
        let run = |pe: usize| {
            let inj = FaultInjector::new(plan.clone(), pe);
            (0..64)
                .map(|i| inj.predecide(OpKind::Get, i % 4))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "streams differ across PEs");
        let drops = run(1)
            .iter()
            .filter(|d| matches!(d, PreDecision::Drop))
            .count();
        assert!(drops > 5 && drops < 40, "drop rate plausible: {drops}");
    }

    #[test]
    fn drop_limit_caps_injections() {
        let plan = Arc::new(FaultPlan::seeded(5).with_drop_limited(
            OpClass::All,
            TargetSel::Any,
            1.0,
            3,
        ));
        let inj = FaultInjector::new(plan, 0);
        let drops = (0..100)
            .filter(|_| matches!(inj.predecide(OpKind::Get, 1), PreDecision::Drop))
            .count();
        assert_eq!(drops, 3);
    }

    #[test]
    fn delay_rule_adds_latency() {
        let plan = Arc::new(FaultPlan::seeded(3).with_delay(
            OpClass::Gets,
            TargetSel::Any,
            1.0,
            7_500,
        ));
        let inj = FaultInjector::new(plan, 0);
        assert_eq!(
            inj.predecide(OpKind::Get, 1),
            PreDecision::Proceed { extra_ns: 7_500 }
        );
        assert_eq!(
            inj.predecide(OpKind::AtomicFetchAdd, 1),
            PreDecision::Proceed { extra_ns: 0 }
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let pol = RetryPolicy {
            max_attempts: 10,
            base_backoff_ns: 1_000,
            max_backoff_ns: 8_000,
            jitter_pct: 0,
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(pol.backoff_ns(1, &mut rng), 1_000);
        assert_eq!(pol.backoff_ns(2, &mut rng), 2_000);
        assert_eq!(pol.backoff_ns(4, &mut rng), 8_000);
        assert_eq!(pol.backoff_ns(9, &mut rng), 8_000, "capped");
        let jit = RetryPolicy {
            jitter_pct: 50,
            ..pol
        };
        for a in 1..6 {
            let b = jit.backoff_ns(a, &mut rng);
            let base = (1_000u64 << (a - 1)).min(8_000);
            assert!(b >= base && b <= base + base / 2, "jitter in range: {b}");
        }
    }

    #[test]
    fn backoff_saturates_at_high_attempt_counts() {
        // Service-mode soaks can push attempt counts far past the shift
        // range; the backoff must stay pinned at the ceiling, never wrap.
        let pol = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff_ns: 2_000,
            max_backoff_ns: 64_000,
            jitter_pct: 50,
        };
        let mut rng = SplitMix64::new(3);
        for attempt in [21, 64, 1_000, 1_000_000, u32::MAX] {
            let b = pol.backoff_ns(attempt, &mut rng);
            assert!(
                b == pol.max_backoff_ns,
                "attempt {attempt}: backoff {b} escaped the ceiling"
            );
        }
    }

    #[test]
    fn backoff_extreme_policies_never_overflow() {
        // Degenerate policies (huge bases, huge ceilings, full jitter)
        // must clamp via saturating arithmetic instead of panicking in
        // debug builds or wrapping in release builds.
        let mut rng = SplitMix64::new(4);
        let extreme = [
            RetryPolicy {
                max_attempts: 8,
                base_backoff_ns: u64::MAX,
                max_backoff_ns: u64::MAX,
                jitter_pct: 100,
            },
            RetryPolicy {
                max_attempts: 8,
                base_backoff_ns: u64::MAX / 2 + 1,
                max_backoff_ns: 0, // ceiling falls back to the base
                jitter_pct: 99,
            },
            RetryPolicy {
                max_attempts: 8,
                base_backoff_ns: 1,
                max_backoff_ns: u64::MAX,
                jitter_pct: 100,
            },
        ];
        for pol in extreme {
            let ceiling = pol.max_backoff_ns.max(pol.base_backoff_ns);
            for attempt in [1, 2, 20, 63, 64, 65, u32::MAX] {
                let b = pol.backoff_ns(attempt, &mut rng);
                assert!(b <= ceiling, "backoff {b} above ceiling {ceiling}");
            }
        }
    }

    #[test]
    fn retry_op_retries_then_succeeds() {
        let pol = RetryPolicy::default_thief();
        let mut rng = SplitMix64::new(2);
        let mut charged = 0u64;
        let mut retries = 0u32;
        let mut failures_left = 2;
        let r = retry_op(
            &pol,
            &mut rng,
            |ns| charged += ns,
            || retries += 1,
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(OpError::Retriable {
                        kind: OpKind::Get,
                        target: 1,
                    })
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(r, Ok(42));
        assert_eq!(retries, 2);
        assert!(charged >= 2 * pol.base_backoff_ns);
    }

    #[test]
    fn retry_op_gives_up_and_respects_fatal() {
        let pol = RetryPolicy {
            max_attempts: 3,
            base_backoff_ns: 10,
            max_backoff_ns: 100,
            jitter_pct: 0,
        };
        let mut rng = SplitMix64::new(2);
        let mut calls = 0;
        let r: OpResult<u64> = retry_op(
            &pol,
            &mut rng,
            |_| {},
            || {},
            || {
                calls += 1;
                Err(OpError::Retriable {
                    kind: OpKind::Get,
                    target: 1,
                })
            },
        );
        assert!(r.is_err());
        assert_eq!(calls, 3);

        calls = 0;
        let r: OpResult<u64> = retry_op(
            &pol,
            &mut rng,
            |_| {},
            || {},
            || {
                calls += 1;
                Err(OpError::TargetDown {
                    kind: OpKind::Get,
                    target: 1,
                })
            },
        );
        assert!(matches!(r, Err(OpError::TargetDown { .. })));
        assert_eq!(calls, 1, "TargetDown is not retried");
    }
}
