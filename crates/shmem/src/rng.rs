//! A small, fast, dependency-free PRNG (SplitMix64).
//!
//! Used wherever the runtime needs seeded pseudo-randomness — victim
//! selection in the scheduler, fault-schedule sampling in the injector,
//! and randomized tests. SplitMix64 passes BigCrush, has a full 2⁶⁴
//! period per stream, and — crucially for the virtual-time engine —
//! is completely deterministic from its seed, so seeded runs replay
//! bit-identically.

/// SplitMix64 pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

/// One step of the SplitMix64 output function: a strong 64-bit mix.
///
/// Also useful on its own for deriving decorrelated per-PE streams from
/// a single run seed (`mix64(seed ^ pe)`).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SplitMix64 {
    /// Seeded generator. Different seeds give decorrelated streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Derive a decorrelated stream for `(seed, stream)` — e.g. one PRNG
    /// per PE from one run seed.
    pub fn stream(seed: u64, stream: u64) -> SplitMix64 {
        SplitMix64::new(mix64(seed ^ mix64(stream)))
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics when `n == 0` — "uniform over
    /// nothing" has no honest answer, and the old debug-only guard let
    /// release builds silently return 0, turning caller bugs (an empty
    /// victim set, a zero-width range) into biased draws.
    ///
    /// Uses the widening-multiply reduction (Lemire); the modulo bias is
    /// below 2⁻⁴⁰ for every `n` the runtime uses, which is irrelevant for
    /// victim selection and fault sampling.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SplitMix64::below(0): empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(43);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567 from the canonical SplitMix64.
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics_in_all_build_profiles() {
        // The contract is hard (assert!, not debug_assert!): release
        // builds must panic too, never silently return 0.
        let mut r = SplitMix64::new(1);
        let _ = r.below(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes_and_rate() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = SplitMix64::stream(42, 0);
        let mut b = SplitMix64::stream(42, 1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
