//! Point-to-point synchronization and distributed locks — the
//! OpenSHMEM `shmem_wait_until` / `shmem_set_lock` surface.
//!
//! The queue protocols themselves avoid these (that's the paper's
//! point), but a complete substrate needs them: applications built on
//! the task pool use flags and locks for phases and shared structures,
//! and the SDC baseline's spinlock is the degenerate inline form of the
//! same pattern.
//!
//! In virtual-time mode every probe is a charged, gated operation, so a
//! waiting PE's clock advances and the PE it waits on can always make
//! progress — the same liveness argument as the scheduler's poll loops.

use crate::addr::SymAddr;
use crate::ctx::ShmemCtx;

/// Comparison operators for [`ShmemCtx::wait_until`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WaitCmp {
    /// Wait until the word equals the operand.
    Eq,
    /// Wait until the word differs from the operand.
    Ne,
    /// Wait until the word is greater than the operand.
    Gt,
    /// Wait until the word is at least the operand.
    Ge,
    /// Wait until the word is less than the operand.
    Lt,
    /// Wait until the word is at most the operand.
    Le,
}

impl WaitCmp {
    fn holds(self, value: u64, operand: u64) -> bool {
        match self {
            WaitCmp::Eq => value == operand,
            WaitCmp::Ne => value != operand,
            WaitCmp::Gt => value > operand,
            WaitCmp::Ge => value >= operand,
            WaitCmp::Lt => value < operand,
            WaitCmp::Le => value <= operand,
        }
    }
}

impl ShmemCtx {
    /// Poll (`pe`, `addr`) until `cmp` holds against `operand`; returns
    /// the satisfying value. Each probe is one charged atomic fetch.
    ///
    /// If a peer PE panics while this PE is waiting, the poll propagates
    /// the world poison as a panic instead of spinning forever (in virtual
    /// mode the gate itself panics; in threaded mode the loop checks the
    /// poison flag between probes).
    pub fn wait_until(&self, pe: usize, addr: SymAddr, cmp: WaitCmp, operand: u64) -> u64 {
        loop {
            if self.world_poisoned() {
                panic!("wait_until abandoned: world poisoned by a peer panic");
            }
            let v = self.atomic_fetch(pe, addr);
            if cmp.holds(v, operand) {
                return v;
            }
        }
    }

    /// Acquire a distributed lock word (0 = free): spin with remote
    /// compare-swaps, OpenSHMEM `shmem_set_lock` style. The winning value
    /// written is `my_pe + 1` so a debugger can see the holder.
    pub fn set_lock(&self, pe: usize, addr: SymAddr) {
        let me = self.my_pe() as u64 + 1;
        loop {
            if self.world_poisoned() {
                panic!("set_lock abandoned: world poisoned by a peer panic");
            }
            if self.atomic_compare_swap(pe, addr, 0, me) == 0 {
                return;
            }
        }
    }

    /// Try to acquire the lock once; `true` on success.
    pub fn test_lock(&self, pe: usize, addr: SymAddr) -> bool {
        let me = self.my_pe() as u64 + 1;
        self.atomic_compare_swap(pe, addr, 0, me) == 0
    }

    /// Release a lock previously acquired with [`Self::set_lock`].
    ///
    /// # Panics
    /// Panics (in debug builds) if this PE does not hold the lock —
    /// releasing someone else's lock is always a bug.
    pub fn clear_lock(&self, pe: usize, addr: SymAddr) {
        let me = self.my_pe() as u64 + 1;
        let prev = self.atomic_swap(pe, addr, 0);
        debug_assert_eq!(prev, me, "released a lock held by PE {}", prev as i64 - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{run_world, WorldConfig};

    #[test]
    fn wait_until_sees_a_remote_flag() {
        for cfg in [
            WorldConfig::threaded(2, 256),
            WorldConfig::virtual_time(2, 256),
        ] {
            let out = run_world(cfg, |ctx| {
                let flag = ctx.alloc_words(1);
                if ctx.my_pe() == 0 {
                    ctx.compute(5_000);
                    ctx.atomic_set(1, flag, 7);
                    0
                } else {
                    ctx.wait_until(ctx.my_pe(), flag, WaitCmp::Ge, 7)
                }
            })
            .unwrap();
            assert_eq!(out.results[1], 7);
        }
    }

    #[test]
    fn wait_cmp_operators() {
        assert!(WaitCmp::Eq.holds(3, 3));
        assert!(!WaitCmp::Eq.holds(3, 4));
        assert!(WaitCmp::Ne.holds(3, 4));
        assert!(WaitCmp::Gt.holds(4, 3));
        assert!(WaitCmp::Ge.holds(3, 3));
        assert!(WaitCmp::Lt.holds(2, 3));
        assert!(WaitCmp::Le.holds(3, 3));
        assert!(!WaitCmp::Le.holds(4, 3));
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        // 6 PEs increment a non-atomic counter pair under the lock; the
        // pair must never tear (both words always equal).
        for cfg in [
            WorldConfig::threaded(6, 256),
            WorldConfig::virtual_time(6, 256),
        ] {
            let out = run_world(cfg, |ctx| {
                let lock = ctx.alloc_words(1);
                let data = ctx.alloc_words(2);
                for _ in 0..20 {
                    ctx.set_lock(0, lock);
                    // Non-atomic read-modify-write of two words on PE 0:
                    // only safe under the lock.
                    let mut pair = [0u64; 2];
                    ctx.get_words(0, data, &mut pair);
                    assert_eq!(pair[0], pair[1], "torn update observed");
                    ctx.put_words(0, data, &[pair[0] + 1, pair[1] + 1]);
                    ctx.clear_lock(0, lock);
                }
                ctx.barrier_all();
                let mut pair = [0u64; 2];
                ctx.get_words(0, data, &mut pair);
                pair
            })
            .unwrap();
            for pair in out.results {
                assert_eq!(pair, [120, 120], "6 PEs × 20 increments");
            }
        }
    }

    #[test]
    fn test_lock_fails_when_held() {
        let out = run_world(WorldConfig::virtual_time(2, 256), |ctx| {
            let lock = ctx.alloc_words(1);
            let mut observed_busy = false;
            if ctx.my_pe() == 0 {
                ctx.set_lock(0, lock);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                observed_busy = !ctx.test_lock(0, lock);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 0 {
                ctx.clear_lock(0, lock);
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                assert!(ctx.test_lock(0, lock), "free after clear");
                ctx.clear_lock(0, lock);
            }
            observed_busy
        })
        .unwrap();
        assert!(out.results[1]);
    }
}
