//! Per-site contention counters (`WorldConfig::profile_sites`).
//!
//! The telemetry pipeline needs to know *where* the protocols contend —
//! which `AtomicSite` burns CAS retries, which spin-poll read runs hot —
//! without arming the full proto-capture layer. This module is the
//! cheap half of that bargain: plain per-PE counters, indexed by the
//! raw site id the protocol code already annotates through
//! [`crate::ShmemCtx::proto_site`], bumped with ordinary stores inside
//! the op adapters. No shared atomics, no clock interaction: profiling
//! a run cannot perturb its virtual-time results (the differential
//! suites pin this).
//!
//! `sws-shmem` deliberately does not know the `AtomicSite` catalog —
//! ids travel as raw `u16` and are decoded back to names by the obs
//! layer via `AtomicSite::from_id`.

/// Plain per-PE event counters for one annotated atomic site.
///
/// Semantics per field (all cumulative over the run):
/// - `rmw`: fetch-add / swap / non-blocking add ops issued at the site.
/// - `cas_won` / `cas_lost`: compare-swap outcomes — `cas_lost` is the
///   direct contention signal (a thief lost the race for the metadata
///   word and must retry or move on).
/// - `loads`: annotated atomic reads; for polling sites (the thief's
///   probe, the owner's stealval read) this is the spin-poll count.
/// - `stores`: annotated atomic writes (including owner-local ring
///   record writes, which thieves race to copy).
/// - `bulk`: annotated block transfers (`get`/`put`/gather).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiteCounters {
    /// Remote RMW ops (fetch-add, swap, add-nbi) at this site.
    pub rmw: u64,
    /// Compare-swaps that succeeded.
    pub cas_won: u64,
    /// Compare-swaps that lost the race (the contention signal).
    pub cas_lost: u64,
    /// Annotated atomic reads (spin-poll count for polling sites).
    pub loads: u64,
    /// Annotated atomic / owner-local stores.
    pub stores: u64,
    /// Annotated bulk transfers (get/put/gather).
    pub bulk: u64,
}

impl SiteCounters {
    /// Total events recorded at this site.
    pub fn total(&self) -> u64 {
        self.rmw + self.cas_won + self.cas_lost + self.loads + self.stores + self.bulk
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// Fraction of compare-swaps that lost (0.0 when none ran).
    pub fn cas_loss_rate(&self) -> f64 {
        let n = self.cas_won + self.cas_lost;
        if n == 0 {
            0.0
        } else {
            self.cas_lost as f64 / n as f64
        }
    }

    /// Accumulate another PE's counters for the same site.
    pub fn merge(&mut self, other: &SiteCounters) {
        self.rmw += other.rmw;
        self.cas_won += other.cas_won;
        self.cas_lost += other.cas_lost;
        self.loads += other.loads;
        self.stores += other.stores;
        self.bulk += other.bulk;
    }
}

/// Merge per-PE profiles (vectors indexed by raw site id, possibly of
/// different lengths) into one site-indexed aggregate.
pub fn merge_site_profiles(profiles: &[Vec<SiteCounters>]) -> Vec<SiteCounters> {
    let len = profiles.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = vec![SiteCounters::default(); len];
    for p in profiles {
        for (i, c) in p.iter().enumerate() {
            out[i].merge(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_handles_ragged_profiles() {
        let a = vec![
            SiteCounters { rmw: 1, ..Default::default() },
            SiteCounters { cas_lost: 2, cas_won: 2, ..Default::default() },
        ];
        let b = vec![SiteCounters { rmw: 3, loads: 5, ..Default::default() }];
        let m = merge_site_profiles(&[a, b]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].rmw, 4);
        assert_eq!(m[0].loads, 5);
        assert_eq!(m[1].cas_lost, 2);
        assert!((m[1].cas_loss_rate() - 0.5).abs() < 1e-12);
        assert!(!m[1].is_empty());
    }

    #[test]
    fn empty_profile_set_merges_to_empty() {
        assert!(merge_site_profiles(&[]).is_empty());
        assert_eq!(SiteCounters::default().cas_loss_rate(), 0.0);
    }
}
