//! Minimal `Mutex`/`Condvar` wrappers over `std::sync` with a
//! poisoning-free API (lock() returns the guard directly).
//!
//! The virtual-time engine and the threaded barrier deliberately panic
//! *through* held locks when a world is poisoned; `std`'s lock poisoning
//! would then turn every later acquisition into an unrelated panic. These
//! wrappers recover the inner guard instead, so the world's own poison
//! protocol (see [`crate::vclock::VClock::poison`]) stays the single
//! source of failure truth.

use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard};

/// A mutex whose `lock` ignores `std` poisoning.
pub(crate) struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, recovering the guard if a panicking thread
    /// poisoned it.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A condition variable paired with [`Mutex`].
pub(crate) struct Condvar(StdCondvar);

impl Condvar {
    pub(crate) fn new() -> Condvar {
        Condvar(StdCondvar::new())
    }

    /// Atomically release the guard and wait for a notification.
    pub(crate) fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std equivalent of parking_lot's in-place wait: move
        // the guard out, wait, move the reacquired guard back in.
        take_mut(guard, |g| match self.0.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    pub(crate) fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` via `f`, aborting the process if `f` panics (it cannot:
/// both callers only move guards through `Condvar::wait`).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    // SAFETY: `ptr::read` duplicates `*slot`, leaving the slot logically
    // uninitialized until the matching `ptr::write` below. Every exit path
    // between the two either writes a replacement value back (the normal
    // path) or aborts the process without unwinding (`catch_unwind` +
    // `abort`), so no caller — including a panicking one — can ever
    // observe or drop the duplicated value twice.
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}
