//! Collective operations: barrier, broadcast, reductions, and the
//! collective symmetric allocator.
//!
//! All collectives must be called by every PE of the world in the same
//! order (standard SPMD contract). They are built from the control block
//! at the front of every region plus the barrier, so they are globally
//! ordered and may share scratch slots.

use crate::addr::SymAddr;
use crate::ctx::ShmemCtx;
use crate::heap::{ctrl, SymmetricHeap};

/// Sentinel broadcast by PE 0 when a collective allocation fails.
const ALLOC_FAILED: u64 = u64::MAX;

impl ShmemCtx {
    /// Barrier across all PEs. In virtual-time mode every clock jumps to
    /// `max(entry clocks) + barrier cost`; in threaded mode a real barrier.
    pub fn barrier_all(&self) {
        let cost = self.world().net.barrier_ns;
        self.record_barrier(cost);
        match &self.world().vclock {
            Some(vc) => vc.barrier(self.my_pe(), cost),
            None => match &self.world().explore {
                Some(eg) => eg.barrier(self.my_pe(), cost),
                None => self.world().thread_barrier.wait(),
            },
        }
    }

    /// Broadcast a 64-bit value from `root` to every PE; returns the value.
    pub fn broadcast64(&self, root: usize, value: u64) -> u64 {
        assert!(root < self.n_pes(), "broadcast root {root} out of range");
        self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::BCAST);
            if self.my_pe() == root {
                self.atomic_set(root, slot, value);
            }
            self.barrier_all();
            let v = self.atomic_fetch(root, slot);
            self.barrier_all();
            v
        })
    }

    /// Global sum reduction of one u64 per PE; every PE gets the total.
    pub fn reduce_sum_u64(&self, value: u64) -> u64 {
        self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::REDUCE);
            if self.my_pe() == 0 {
                self.atomic_set(0, slot, 0);
            }
            self.barrier_all();
            self.atomic_add_nbi(0, slot, value);
            self.quiet();
            self.barrier_all();
            let v = self.atomic_fetch(0, slot);
            self.barrier_all();
            v
        })
    }

    /// Global max reduction of one u64 per PE; every PE gets the maximum.
    pub fn reduce_max_u64(&self, value: u64) -> u64 {
        self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::REDUCE);
            if self.my_pe() == 0 {
                self.atomic_set(0, slot, 0);
            }
            self.barrier_all();
            // CAS loop: repeated remote compare-swaps until our value is
            // subsumed. (OpenSHMEM has no fetch-max; this is the idiom.)
            let mut cur = self.atomic_fetch(0, slot);
            while value > cur {
                let prev = self.atomic_compare_swap(0, slot, cur, value);
                if prev == cur {
                    break;
                }
                cur = prev;
            }
            self.barrier_all();
            let v = self.atomic_fetch(0, slot);
            self.barrier_all();
            v
        })
    }

    /// Collectively allocate `words` words of symmetric memory; every PE
    /// receives the same address, naming a distinct object per PE.
    ///
    /// # Panics
    /// Panics on every PE when the heap is exhausted (the world's result
    /// then surfaces as [`crate::ShmemError::PePanicked`]).
    pub fn alloc_words(&self, words: usize) -> SymAddr {
        let off = self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::BCAST);
            self.barrier_all();
            if self.my_pe() == 0 {
                let off = match self.world().heap.bump(words) {
                    Some(off) => off as u64,
                    None => ALLOC_FAILED,
                };
                self.atomic_set(0, slot, off);
            }
            self.barrier_all();
            let off = self.atomic_fetch(0, slot);
            self.barrier_all();
            off
        });
        if off == ALLOC_FAILED {
            panic!(
                "symmetric heap exhausted: requested {words} words, {} available",
                self.world().heap.words_free()
            );
        }
        SymAddr::new(off as usize)
    }

    /// As [`alloc_words`](Self::alloc_words), but the returned address
    /// starts on a false-sharing isolation boundary
    /// ([`crate::CACHE_LINE_WORDS`] words = 128 bytes) under the aligned
    /// heap layout, so a contended word (a stealval, a lock) never shares
    /// a line with the allocation before it. Under [`crate::HeapLayout::Packed`]
    /// this is exactly `alloc_words` — same op sequence, same geometry.
    pub fn alloc_words_aligned(&self, words: usize) -> SymAddr {
        let off = self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::BCAST);
            self.barrier_all();
            if self.my_pe() == 0 {
                let off = match self
                    .world()
                    .heap
                    .bump_aligned(words, crate::heap::CACHE_LINE_WORDS)
                {
                    Some(off) => off as u64,
                    None => ALLOC_FAILED,
                };
                self.atomic_set(0, slot, off);
            }
            self.barrier_all();
            let off = self.atomic_fetch(0, slot);
            self.barrier_all();
            off
        });
        if off == ALLOC_FAILED {
            panic!(
                "symmetric heap exhausted: requested {words} aligned words, {} available",
                self.world().heap.words_free()
            );
        }
        SymAddr::new(off as usize)
    }
}

impl ShmemCtx {
    /// Global min reduction of one u64 per PE; every PE gets the minimum.
    pub fn reduce_min_u64(&self, value: u64) -> u64 {
        self.with_collective(|| {
            let slot = SymmetricHeap::ctrl(ctrl::REDUCE);
            if self.my_pe() == 0 {
                self.atomic_set(0, slot, u64::MAX);
            }
            self.barrier_all();
            let mut cur = self.atomic_fetch(0, slot);
            while value < cur {
                let prev = self.atomic_compare_swap(0, slot, cur, value);
                if prev == cur {
                    break;
                }
                cur = prev;
            }
            self.barrier_all();
            let v = self.atomic_fetch(0, slot);
            self.barrier_all();
            v
        })
    }

    /// All-gather one u64 per PE into a collectively allocated table;
    /// returns every PE's contribution in rank order. The table address
    /// is allocated on first use by the caller and passed in so repeated
    /// gathers reuse the space.
    pub fn all_gather64(&self, table: crate::SymAddr, value: u64) -> Vec<u64> {
        assert!(
            table.word() + self.n_pes() <= self.world().heap.words_per_pe(),
            "all-gather table out of range"
        );
        // Everyone publishes into its slot of PE 0's table, then reads
        // the whole table back (two barriers bracket the exchange).
        self.with_collective(|| {
            self.atomic_set_nbi(0, table.offset(self.my_pe()), value);
            self.quiet();
            self.barrier_all();
            let mut out = vec![0u64; self.n_pes()];
            self.get_words(0, table, &mut out);
            self.barrier_all();
            out
        })
    }
}
