//! Protocol-level tests for the SWS and SDC queues: local discipline,
//! steal correctness under concurrency, exact communication counts
//! (paper Fig. 2), and completion-epoch behaviour (Figs. 4–5).
#![allow(clippy::while_let_loop)] // steal loops with a Closed-retry arm

use sws_core::stealval::Layout;
use sws_core::{QueueConfig, SdcQueue, StealOutcome, StealQueue, SwsQueue};
use sws_shmem::{run_world, NetModel, ShmemCtx, WorldConfig};
use sws_task::TaskDescriptor;

fn cfg_small() -> QueueConfig {
    QueueConfig::new(256, 24)
}

fn world(n: usize) -> WorldConfig {
    WorldConfig::virtual_time(n, 1 << 16)
}

fn task(tag: u64) -> TaskDescriptor {
    TaskDescriptor::new(1, &tag.to_le_bytes())
}

fn tag_of(t: &TaskDescriptor) -> u64 {
    u64::from_le_bytes(t.payload().try_into().unwrap())
}

/// Run the same closure against both queue types.
fn with_both_queues<F>(n_pes: usize, f: F)
where
    F: Fn(&ShmemCtx, &mut dyn StealQueue, &'static str) + Sync,
{
    run_world(world(n_pes), |ctx| {
        let mut q = SwsQueue::new(ctx, cfg_small());
        f(ctx, &mut q, "sws");
    })
    .unwrap();
    run_world(world(n_pes), |ctx| {
        let mut q = SdcQueue::new(ctx, cfg_small());
        f(ctx, &mut q, "sdc");
    })
    .unwrap();
}

#[test]
fn local_lifo_discipline() {
    with_both_queues(1, |_ctx, q, name| {
        for i in 0..10 {
            assert!(q.enqueue(&task(i)), "{name}");
        }
        assert_eq!(q.local_count(), 10);
        for i in (0..10).rev() {
            let t = q.pop_local().unwrap();
            assert_eq!(tag_of(&t), i, "{name}: LIFO order");
        }
        assert!(q.pop_local().is_none());
    });
}

#[test]
fn release_exposes_half_then_acquire_recovers() {
    with_both_queues(1, |_ctx, q, name| {
        for i in 0..16 {
            q.enqueue(&task(i));
        }
        assert!(q.release(), "{name}: release with empty shared");
        assert_eq!(q.local_count(), 8, "{name}");
        assert_eq!(q.shared_estimate(), 8, "{name}");

        // Releasing again while shared work remains must refuse.
        assert!(!q.release(), "{name}: release with shared work");

        // Drain local, then acquire brings back half of the shared 8.
        for _ in 0..8 {
            q.pop_local().unwrap();
        }
        assert!(q.acquire(), "{name}");
        assert_eq!(q.local_count(), 4, "{name}");
        assert_eq!(q.shared_estimate(), 4, "{name}");

        // Pop the remaining 8 (4 local + 4 shared) via repeated acquires.
        let mut got = 0;
        loop {
            while let Some(_t) = q.pop_local() {
                got += 1;
            }
            if !q.acquire() {
                break;
            }
        }
        assert_eq!(got, 8, "{name}: every remaining task recovered once");
    });
}

#[test]
fn released_tasks_are_the_oldest() {
    // The shared portion must hold the *oldest* tasks (stolen FIFO),
    // while the owner keeps popping the newest.
    with_both_queues(1, |_ctx, q, name| {
        for i in 0..8 {
            q.enqueue(&task(i));
        }
        q.release(); // exposes 0..4, keeps 4..8 local
        let newest = q.pop_local().unwrap();
        assert_eq!(tag_of(&newest), 7, "{name}");
    });
}

#[test]
fn two_pe_steal_moves_the_right_tasks() {
    with_both_queues(2, |ctx, q, name| {
        if ctx.my_pe() == 0 {
            for i in 0..100 {
                q.enqueue(&task(i));
            }
            q.release(); // expose 50 (tasks 0..50)
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            match q.steal_from(0) {
                StealOutcome::Got { tasks } => {
                    assert_eq!(tasks, 25, "{name}: steal-half of 50");
                    // Stolen tasks are the oldest: 0..25.
                    let mut tags: Vec<u64> = Vec::new();
                    while let Some(t) = q.pop_local() {
                        tags.push(tag_of(&t));
                    }
                    tags.sort_unstable();
                    assert_eq!(tags, (0..25).collect::<Vec<_>>(), "{name}");
                }
                other => panic!("{name}: expected Got, got {other:?}"),
            }
        }
        ctx.barrier_all();
        q.flush_completions();
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            q.progress();
            assert_eq!(q.stats().reclaimed, 25, "{name}: deferred completion");
        }
    });
}

#[test]
fn steal_from_empty_target_reports_empty() {
    with_both_queues(2, |ctx, q, _name| {
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            assert!(matches!(
                q.steal_from(0),
                StealOutcome::Empty | StealOutcome::Closed
            ));
            assert!(!q.probe(0));
        }
    });
}

#[test]
fn fig2_sws_steal_is_3_comms_2_blocking() {
    let out = run_world(world(2), |ctx| {
        let mut q = SwsQueue::new(ctx, cfg_small());
        if ctx.my_pe() == 0 {
            for i in 0..64 {
                q.enqueue(&task(i));
            }
            q.release();
        }
        ctx.barrier_all();
        let before = ctx.stats();
        if ctx.my_pe() == 1 {
            assert!(matches!(q.steal_from(0), StealOutcome::Got { .. }));
        }
        let delta = ctx.stats().since(&before);
        ctx.barrier_all();
        (delta.data_ops(), delta.blocking_ops())
    })
    .unwrap();
    // Thief PE 1: exactly 3 one-sided communications, 2 blocking.
    assert_eq!(out.results[1], (3, 2), "SWS steal op counts (Fig. 2)");
    assert_eq!(out.results[0], (0, 0), "owner untouched during steal");
}

#[test]
fn fig2_sdc_steal_is_6_comms_5_blocking() {
    let out = run_world(world(2), |ctx| {
        let mut q = SdcQueue::new(ctx, cfg_small());
        if ctx.my_pe() == 0 {
            for i in 0..64 {
                q.enqueue(&task(i));
            }
            q.release();
        }
        ctx.barrier_all();
        let before = ctx.stats();
        if ctx.my_pe() == 1 {
            assert!(matches!(q.steal_from(0), StealOutcome::Got { .. }));
        }
        let delta = ctx.stats().since(&before);
        ctx.barrier_all();
        (delta.data_ops(), delta.blocking_ops())
    })
    .unwrap();
    // Thief PE 1: exactly 6 one-sided communications, 5 blocking.
    assert_eq!(out.results[1], (6, 5), "SDC steal op counts (Fig. 2)");
    assert_eq!(out.results[0], (0, 0), "owner untouched during steal");
}

#[test]
fn sws_steal_sequence_follows_steal_half() {
    // 8 thieves drain a 150-task advertisement; the block volumes must be
    // exactly the paper's sequence {75,37,19,9,5,2,1,1,1} in claim order.
    let out = run_world(world(2), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(512, 24));
        let mut volumes = Vec::new();
        if ctx.my_pe() == 0 {
            for i in 0..300 {
                q.enqueue(&task(i));
            }
            q.release(); // exposes 150
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            loop {
                match q.steal_from(0) {
                    StealOutcome::Got { tasks } => volumes.push(tasks),
                    StealOutcome::Empty => break,
                    StealOutcome::Closed => {}
                    other => unreachable!("fault-free world: {other:?}"),
                }
            }
        }
        ctx.barrier_all();
        volumes
    })
    .unwrap();
    assert_eq!(out.results[1], vec![75, 37, 19, 9, 5, 2, 1, 1, 1]);
}

#[test]
fn concurrent_thieves_claim_disjoint_blocks() {
    // 7 thieves hammer one 128-task advertisement concurrently; every
    // task must be stolen exactly once (atomicity of the fetch-add
    // claim). Run in *threaded* mode for a real interleaving stress.
    for mode in [
        WorldConfig::threaded(8, 1 << 16),
        WorldConfig::virtual_time(8, 1 << 16),
    ] {
        let out = run_world(mode, |ctx| {
            let mut q = SwsQueue::new(ctx, QueueConfig::new(512, 24));
            if ctx.my_pe() == 0 {
                for i in 0..256 {
                    q.enqueue(&task(i));
                }
                q.release(); // exposes 128 (tasks 0..128)
            }
            ctx.barrier_all();
            let mut tags = Vec::new();
            if ctx.my_pe() != 0 {
                loop {
                    match q.steal_from(0) {
                        StealOutcome::Got { .. } => {
                            while let Some(t) = q.pop_local() {
                                tags.push(tag_of(&t));
                            }
                        }
                        StealOutcome::Empty => break,
                        StealOutcome::Closed => {}
                        other => unreachable!("fault-free world: {other:?}"),
                    }
                }
            }
            q.flush_completions();
            ctx.barrier_all();
            tags
        })
        .unwrap();
        let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..128).collect::<Vec<_>>());
    }
}

#[test]
fn sdc_concurrent_thieves_claim_disjoint_blocks() {
    for mode in [
        WorldConfig::threaded(8, 1 << 16),
        WorldConfig::virtual_time(8, 1 << 16),
    ] {
        let out = run_world(mode, |ctx| {
            let mut q = SdcQueue::new(ctx, QueueConfig::new(512, 24));
            if ctx.my_pe() == 0 {
                for i in 0..256 {
                    q.enqueue(&task(i));
                }
                q.release();
            }
            ctx.barrier_all();
            let mut tags = Vec::new();
            if ctx.my_pe() != 0 {
                loop {
                    match q.steal_from(0) {
                        StealOutcome::Got { .. } => {
                            while let Some(t) = q.pop_local() {
                                tags.push(tag_of(&t));
                            }
                        }
                        StealOutcome::Empty | StealOutcome::Closed => break,
                        other => unreachable!("fault-free world: {other:?}"),
                    }
                }
            }
            q.flush_completions();
            ctx.barrier_all();
            tags
        })
        .unwrap();
        let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..128).collect::<Vec<_>>());
    }
}

#[test]
fn epoch_acquire_proceeds_with_inflight_steals() {
    // Fig. 5: with completion epochs the owner can acquire while earlier
    // steals are claimed but not finished. The thief claims a block and
    // (in virtual-time order) the owner's acquire at a later clock must
    // succeed without waiting for the completion signal, because the
    // second epoch's completion array is free.
    let out = run_world(world(2), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(256, 24));
        if ctx.my_pe() == 0 {
            for i in 0..64 {
                q.enqueue(&task(i));
            }
            q.release(); // epoch A: 32 shared, 32 local
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            // Claim 16 (steal completes, including the passive signal —
            // our model applies nbi effects at issue; what we verify here
            // is that the owner's second advertisement got a fresh epoch
            // while the first still had claims).
            assert!(matches!(q.steal_from(0), StealOutcome::Got { tasks: 16 }));
        }
        ctx.barrier_all();
        let mut owner_result = (0u64, 0u64);
        if ctx.my_pe() == 0 {
            // Drain local then acquire: 16 unclaimed remain shared; the
            // owner takes 8 back and re-advertises 8 under epoch B.
            while q.pop_local().is_some() {}
            assert!(q.acquire());
            owner_result = (q.local_count(), q.shared_estimate());
            assert_eq!(q.stats().owner_polls, 0, "no polling with 2 epochs");
        }
        ctx.barrier_all();
        owner_result
    })
    .unwrap();
    assert_eq!(out.results[0], (8, 8));
}

#[test]
fn validbit_layout_still_correct() {
    // The Fig. 3 layout (single epoch) must remain functionally correct —
    // it only loses the no-wait property.
    let out = run_world(world(4), |ctx| {
        let cfg = QueueConfig::new(256, 24).with_layout(Layout::ValidBit);
        let mut q = SwsQueue::new(ctx, cfg);
        if ctx.my_pe() == 0 {
            for i in 0..120 {
                q.enqueue(&task(i));
            }
            q.release();
        }
        ctx.barrier_all();
        let mut got = 0u64;
        if ctx.my_pe() != 0 {
            loop {
                match q.steal_from(0) {
                    StealOutcome::Got { tasks } => got += tasks,
                    StealOutcome::Empty => break,
                    StealOutcome::Closed => {}
                    other => unreachable!("fault-free world: {other:?}"),
                }
            }
        }
        q.flush_completions();
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            while q.pop_local().is_some() {
                got += 1;
            }
            if q.acquire() {
                while q.pop_local().is_some() {
                    got += 1;
                }
            }
        }
        got
    })
    .unwrap();
    let total: u64 = out.results.iter().sum();
    assert_eq!(total, 120, "every task executed exactly once");
}

#[test]
fn ring_wrap_steals_preserve_payloads() {
    // Force the ring to wrap by cycling enqueue/release/steal several
    // times on a small ring, verifying payload integrity throughout.
    let out = run_world(world(2), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(32, 24));
        let mut seen = Vec::new();
        for round in 0..12u64 {
            if ctx.my_pe() == 0 {
                for i in 0..20 {
                    let t = task(round * 1000 + i);
                    while !q.enqueue(&t) {
                        q.progress();
                    }
                }
                q.release();
            }
            ctx.barrier_all();
            if ctx.my_pe() == 1 {
                loop {
                    match q.steal_from(0) {
                        StealOutcome::Got { .. } => {
                            while let Some(t) = q.pop_local() {
                                seen.push(tag_of(&t));
                            }
                        }
                        StealOutcome::Empty => break,
                        StealOutcome::Closed => {}
                        other => unreachable!("fault-free world: {other:?}"),
                    }
                }
                q.flush_completions();
            }
            ctx.barrier_all();
            if ctx.my_pe() == 0 {
                // Drain the remainder locally (acquire recovers shared).
                loop {
                    while let Some(t) = q.pop_local() {
                        seen.push(tag_of(&t));
                    }
                    if !q.acquire() {
                        break;
                    }
                }
            }
            ctx.barrier_all();
        }
        seen
    })
    .unwrap();
    let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
    all.sort_unstable();
    let mut expect: Vec<u64> = (0..12u64)
        .flat_map(|r| (0..20u64).map(move |i| r * 1000 + i))
        .collect();
    expect.sort_unstable();
    assert_eq!(all, expect);
}

#[test]
fn probe_reflects_available_work() {
    with_both_queues(2, |ctx, q, name| {
        if ctx.my_pe() == 0 {
            for i in 0..10 {
                q.enqueue(&task(i));
            }
            q.release();
        }
        ctx.barrier_all();
        if ctx.my_pe() == 1 {
            assert!(q.probe(0), "{name}: work advertised");
            // Drain it.
            while let StealOutcome::Got { .. } = q.steal_from(0) {}
            assert!(!q.probe(0), "{name}: drained");
        }
        ctx.barrier_all();
    });
}

#[test]
fn enqueue_fails_cleanly_when_full_of_unfinished_steals() {
    // Fill the ring, release, let a thief claim but (conceptually) not
    // complete — the owner's enqueue must return false rather than
    // overwrite claimed blocks. With our nbi-applies-at-issue model the
    // completion lands immediately, so emulate pressure purely locally:
    // fill the ring with local tasks and check the boundary.
    run_world(world(1), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(16, 24));
        for i in 0..16 {
            assert!(q.enqueue(&task(i)));
        }
        assert!(!q.enqueue(&task(99)), "ring full");
        q.pop_local().unwrap();
        assert!(q.enqueue(&task(100)), "space after pop");
    })
    .unwrap();
}

#[test]
fn deterministic_virtual_execution() {
    // Identical seeds ⇒ identical steal interleavings and identical
    // virtual makespans in virtual-time mode.
    fn run_once() -> (Vec<u64>, u64) {
        let out = run_world(world(4).with_net(NetModel::edr_infiniband()), |ctx| {
            let mut q = SwsQueue::new(ctx, QueueConfig::new(256, 24));
            if ctx.my_pe() == 0 {
                for i in 0..200 {
                    q.enqueue(&task(i));
                }
                q.release();
            }
            ctx.barrier_all();
            let mut got = 0u64;
            if ctx.my_pe() != 0 {
                loop {
                    match q.steal_from(0) {
                        StealOutcome::Got { tasks } => got += tasks,
                        StealOutcome::Empty => break,
                        StealOutcome::Closed => {}
                        other => unreachable!("fault-free world: {other:?}"),
                    }
                }
            }
            q.flush_completions();
            ctx.barrier_all();
            got
        })
        .unwrap();
        (out.results.clone(), out.makespan_ns())
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn sws_comm_volume_is_one_word_for_discovery() {
    // §5.3: SWS discovers work with a single 64-bit word, vs. SDC's
    // metadata structure. Verify the failed-steal byte counts.
    let sws = run_world(world(2), |ctx| {
        let mut q = SwsQueue::new(ctx, cfg_small());
        ctx.barrier_all();
        let before = ctx.stats();
        if ctx.my_pe() == 1 {
            let _ = q.steal_from(0); // target empty
        }
        let d = ctx.stats().since(&before);
        ctx.barrier_all();
        d.total_bytes()
    })
    .unwrap();
    assert_eq!(sws.results[1], 8, "SWS failed search: one 64-bit word");

    let sdc = run_world(world(2), |ctx| {
        let mut q = SdcQueue::new(ctx, cfg_small());
        ctx.barrier_all();
        let before = ctx.stats();
        if ctx.my_pe() == 1 {
            let _ = q.steal_from(0);
        }
        let d = ctx.stats().since(&before);
        ctx.barrier_all();
        d.total_bytes()
    })
    .unwrap();
    assert!(
        sdc.results[1] > 8,
        "SDC failed search moves more than a word (lock + metadata): {}",
        sdc.results[1]
    );
}

#[test]
fn steal_one_policy_drains_one_at_a_time() {
    use sws_core::steal_half::StealPolicy;
    let out = run_world(world(3), |ctx| {
        let cfg = QueueConfig::new(256, 24).with_policy(StealPolicy::One);
        let mut q = SwsQueue::new(ctx, cfg);
        if ctx.my_pe() == 0 {
            for i in 0..40 {
                q.enqueue(&task(i));
            }
            q.release(); // advertises 20 (≤ One's advert cap of 64)
        }
        ctx.barrier_all();
        let mut got = Vec::new();
        if ctx.my_pe() != 0 {
            loop {
                match q.steal_from(0) {
                    StealOutcome::Got { tasks } => {
                        assert_eq!(tasks, 1, "steal-one takes single tasks");
                        while let Some(t) = q.pop_local() {
                            got.push(tag_of(&t));
                        }
                    }
                    StealOutcome::Empty => break,
                    StealOutcome::Closed => {}
                    other => unreachable!("fault-free world: {other:?}"),
                }
            }
        }
        q.flush_completions();
        ctx.barrier_all();
        got
    })
    .unwrap();
    let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
    all.sort_unstable();
    assert_eq!(all, (0..20).collect::<Vec<_>>());
}

#[test]
fn quarter_policy_partitions_correctly_under_concurrency() {
    use sws_core::steal_half::StealPolicy;
    let out = run_world(world(4), |ctx| {
        let cfg = QueueConfig::new(512, 24).with_policy(StealPolicy::Quarter);
        let mut q = SwsQueue::new(ctx, cfg);
        if ctx.my_pe() == 0 {
            for i in 0..200 {
                q.enqueue(&task(i));
            }
            q.release(); // advertises 100
        }
        ctx.barrier_all();
        let mut got = 0u64;
        if ctx.my_pe() != 0 {
            loop {
                match q.steal_from(0) {
                    StealOutcome::Got { tasks } => got += tasks,
                    StealOutcome::Empty => break,
                    StealOutcome::Closed => {}
                    other => unreachable!("fault-free world: {other:?}"),
                }
            }
        }
        q.flush_completions();
        ctx.barrier_all();
        got
    })
    .unwrap();
    let total: u64 = out.results.iter().sum();
    assert_eq!(total, 100, "every advertised task stolen exactly once");
}

#[test]
fn sdc_honours_steal_policy_too() {
    use sws_core::steal_half::StealPolicy;
    let out = run_world(world(2), |ctx| {
        let cfg = QueueConfig::new(256, 24).with_policy(StealPolicy::One);
        let mut q = SdcQueue::new(ctx, cfg);
        if ctx.my_pe() == 0 {
            for i in 0..20 {
                q.enqueue(&task(i));
            }
            q.release();
        }
        ctx.barrier_all();
        let mut volumes = Vec::new();
        if ctx.my_pe() == 1 {
            while let StealOutcome::Got { tasks } = q.steal_from(0) {
                volumes.push(tasks);
            }
        }
        ctx.barrier_all();
        volumes
    })
    .unwrap();
    assert_eq!(out.results[1], vec![1; 10], "SDC steal-one takes singles");
}

#[test]
fn queue_config_validation_catches_misconfigurations() {
    use sws_core::stealval::Layout;
    // Oversized capacity for the 19-bit epoch-layout tail field.
    let too_big = QueueConfig::new((1 << 19) + 1, 24);
    assert!(std::panic::catch_unwind(|| too_big.validate()).is_err());
    // The same capacity fits the 20-bit ValidBit tail field but not the
    // 19-bit itasks field — still rejected.
    let vb = QueueConfig::new((1 << 19) + 1, 24).with_layout(Layout::ValidBit);
    assert!(std::panic::catch_unwind(|| vb.validate()).is_err());
    // Sane configurations pass.
    let _ok = QueueConfig::new(1 << 19, 24).with_layout(Layout::ValidBit);
    QueueConfig::new(16384, 192).validate();
    // Word sizing follows from task bytes.
    assert_eq!(QueueConfig::new(64, 192).task_words, 24);
    assert_eq!(QueueConfig::new(64, 24).buffer_words(), 64 * 3);
}

#[test]
fn queue_accessors_report_configuration() {
    run_world(world(1), |ctx| {
        let cfg = QueueConfig::new(128, 48);
        let q = SwsQueue::new(ctx, cfg);
        assert_eq!(q.config().capacity, 128);
        assert_eq!(q.config().task_words, 6);
        let q2 = SdcQueue::new(ctx, cfg);
        assert_eq!(q2.config().capacity, 128);
    })
    .unwrap();
}

#[test]
fn sws_closed_gate_rejects_thieves_without_corruption() {
    // Drive the gate closed manually via an acquire on an empty local
    // portion while thieves hammer — no claim may slip through a closed
    // gate, and the re-opened advertisement must be consistent.
    let out = run_world(world(4), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(256, 24));
        if ctx.my_pe() == 0 {
            for i in 0..64 {
                q.enqueue(&task(i));
            }
            q.release(); // 32 shared
        }
        ctx.barrier_all();
        let mut got = 0u64;
        let mut closed_seen = 0u64;
        if ctx.my_pe() != 0 {
            for _ in 0..40 {
                match q.steal_from(0) {
                    StealOutcome::Got { tasks } => got += tasks,
                    StealOutcome::Closed => closed_seen += 1,
                    StealOutcome::Empty => {}
                    other => unreachable!("fault-free world: {other:?}"),
                }
            }
            q.flush_completions();
        }
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            // Drain everything left (local + anything unclaimed).
            loop {
                while q.pop_local().is_some() {
                    got += 1;
                }
                if !q.acquire() {
                    break;
                }
            }
        }
        ctx.barrier_all();
        (got, closed_seen)
    })
    .unwrap();
    let total: u64 = out.results.iter().map(|&(g, _)| g).sum();
    assert_eq!(total, 64, "no task lost or duplicated around gate closes");
}
