//! Chaos tests: seeded fault schedules over both queue protocols.
//!
//! Every test runs a complete distribute-steal-drain workload under a
//! deterministic [`FaultPlan`] and asserts *exactly-once task
//! conservation*: each enqueued task is executed exactly once across all
//! PEs, no matter which ops the injector drops, delays, stalls, or which
//! PE crash-stops. Because injection draws from seeded SplitMix64 streams
//! under virtual time, every schedule here is exactly reproducible.
//!
//! The final test pins the zero-overhead claim: attaching an *inactive*
//! plan (no rules) leaves results, queue stats, op counts, and the
//! virtual-time makespan bit-identical to a world with no injector.

use sws_core::{QueueConfig, SdcQueue, StealOutcome, StealQueue, SwsQueue};
use sws_shmem::{
    run_world, FaultPlan, OpClass, OpKind, ShmemCtx, TargetSel, WorldConfig, WorldOutput,
};
use sws_task::TaskDescriptor;

fn task(tag: u64) -> TaskDescriptor {
    TaskDescriptor::new(1, &tag.to_le_bytes())
}

fn tag_of(t: &TaskDescriptor) -> u64 {
    u64::from_le_bytes(t.payload().try_into().unwrap())
}

fn make_queue<'a>(ctx: &'a ShmemCtx, use_sws: bool, grace_ns: u64) -> Box<dyn StealQueue + 'a> {
    let cfg = QueueConfig::new(256, 24).with_reclaim_grace_ns(grace_ns);
    if use_sws {
        Box::new(SwsQueue::new(ctx, cfg))
    } else {
        Box::new(SdcQueue::new(ctx, cfg))
    }
}

/// Per-PE record a chaos run returns: the tags this PE executed plus its
/// queue counters (as a `Debug` string, for bit-identity comparisons).
type PeOut = (Vec<u64>, String);

/// One distribute-steal-drain round: PE 0 enqueues `n_tasks` tagged tasks
/// and releases them; every other PE steals from PE 0 until the
/// advertisement is exhausted; after a barrier the owner retires the
/// queue and drains whatever remains (including blocks recovered from
/// poisoned or abandoned claims). Returns per-PE executed tags + stats.
fn run_chaos(
    use_sws: bool,
    n_pes: usize,
    n_tasks: u64,
    plan: Option<FaultPlan>,
    grace_ns: u64,
) -> WorldOutput<PeOut> {
    let mut world = WorldConfig::virtual_time(n_pes, 1 << 16);
    if let Some(plan) = plan {
        world = world.with_faults(plan);
    }
    run_world(world, move |ctx| {
        let mut q = make_queue(ctx, use_sws, grace_ns);
        let mut tags: Vec<u64> = Vec::new();
        if ctx.my_pe() == 0 {
            for t in 0..n_tasks {
                assert!(q.enqueue(&task(t)));
            }
            let _ = q.release();
        }
        ctx.barrier_all();
        if ctx.my_pe() != 0 {
            let mut attempts = 0u32;
            loop {
                attempts += 1;
                assert!(attempts <= 500, "thief pe {} livelocked", ctx.my_pe());
                match q.steal_from(0) {
                    StealOutcome::Got { .. } => {
                        attempts = 0;
                        while let Some(t) = q.pop_local() {
                            tags.push(tag_of(&t));
                        }
                    }
                    StealOutcome::Empty => break,
                    // Transient: closed gate, dropped claim, aborted
                    // block — the injected op charged its timeout, so
                    // virtual time advances and the loop terminates.
                    StealOutcome::Closed
                    | StealOutcome::Failed { .. }
                    | StealOutcome::Aborted { .. } => {}
                }
            }
            q.flush_completions();
        }
        ctx.barrier_all();
        if ctx.my_pe() == 0 {
            // Retire waits out every in-flight claim (completion, poison,
            // or grace reclaim), then the drain below owns the rest.
            q.retire();
            loop {
                while let Some(t) = q.pop_local() {
                    tags.push(tag_of(&t));
                }
                if q.local_count() == 0 && !q.acquire() {
                    break;
                }
            }
        }
        (tags, format!("{:?}", q.stats()))
    })
    .expect("chaos world failed")
}

/// Every task executed exactly once across all PEs.
fn assert_conserved(out: &WorldOutput<PeOut>, n_tasks: u64, label: &str) {
    let mut all: Vec<u64> = out
        .results
        .iter()
        .flat_map(|(tags, _)| tags.iter().copied())
        .collect();
    all.sort_unstable();
    let expect: Vec<u64> = (0..n_tasks).collect();
    assert_eq!(all, expect, "{label}: task conservation violated");
}

/// Pull a named counter out of the `Debug` rendering of `QueueStats`.
fn counter(stats_dbg: &str, name: &str) -> u64 {
    let at = stats_dbg
        .find(&format!("{name}: "))
        .unwrap_or_else(|| panic!("counter {name} missing in {stats_dbg}"));
    stats_dbg[at + name.len() + 2..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

// --- Schedule 1: transient random drops --------------------------------

#[test]
fn sws_transient_drops_conserve_tasks() {
    let mut retried = 0;
    for seed in [0xC4A0_0001u64, 0xC4A0_0002, 0xC4A0_0003] {
        let plan = FaultPlan::seeded(seed).with_drop(OpClass::All, TargetSel::Any, 0.15);
        let out = run_chaos(true, 4, 160, Some(plan), 20_000);
        assert_conserved(&out, 160, "sws transient drops");
        retried += out
            .results
            .iter()
            .map(|(_, s)| counter(s, "steals_retried"))
            .sum::<u64>();
    }
    assert!(retried > 0, "15% drop rate must force retries");
}

#[test]
fn sdc_transient_drops_conserve_tasks() {
    let mut retried = 0;
    for seed in [0xC4A0_0011u64, 0xC4A0_0012, 0xC4A0_0013] {
        let plan = FaultPlan::seeded(seed).with_drop(OpClass::All, TargetSel::Any, 0.10);
        let out = run_chaos(false, 4, 160, Some(plan), 20_000);
        assert_conserved(&out, 160, "sdc transient drops");
        retried += out
            .results
            .iter()
            .map(|(_, s)| counter(s, "steals_retried"))
            .sum::<u64>();
    }
    assert!(retried > 0, "10% drop rate must force retries");
}

// --- Schedule 2: a stall window on the victim --------------------------

#[test]
fn stall_window_conserves_tasks() {
    for (use_sws, seed) in [(true, 0xC4A0_0101u64), (false, 0xC4A0_0102)] {
        let plan = FaultPlan::seeded(seed).with_stall(0, 20_000, 60_000);
        let out = run_chaos(use_sws, 3, 120, Some(plan), 20_000);
        assert_conserved(&out, 120, "stall window");
    }
}

// --- Schedule 3: targeted copy loss → poisoned completion --------------

#[test]
fn sws_poisoned_completion_returns_block_to_owner() {
    // Drop every Get aimed at the victim until 8 have failed: the first
    // two steals claim a block, exhaust their copy retries, and poison
    // the completion slot; the owner re-enqueues both blocks.
    let plan =
        FaultPlan::seeded(0xC4A0_1001).with_drop_limited(OpClass::Gets, TargetSel::Pe(0), 1.0, 8);
    let out = run_chaos(true, 2, 64, Some(plan), 20_000);
    assert_conserved(&out, 64, "sws poison");
    let (_, owner) = &out.results[0];
    let (_, thief) = &out.results[1];
    assert!(
        counter(owner, "completions_poisoned") >= 1,
        "owner saw no poisoned completion: {owner}"
    );
    assert!(
        counter(thief, "steals_aborted") >= 1,
        "thief reported no aborted steal: {thief}"
    );
}

// --- Schedule 4: lost completions → owner grace reclaim ----------------

#[test]
fn sws_grace_reclaim_recovers_abandoned_claims() {
    // Drop every compare-swap aimed at the victim until 8 have failed:
    // thieves claim and copy blocks but can neither confirm completion
    // nor poison the slot, abandoning the claim. The owner's grace-period
    // reclaim takes both blocks back.
    let plan = FaultPlan::seeded(0xC4A0_1002).with_drop_limited(
        OpClass::Kind(OpKind::AtomicCompareSwap),
        TargetSel::Pe(0),
        1.0,
        8,
    );
    let out = run_chaos(true, 2, 64, Some(plan), 5_000);
    assert_conserved(&out, 64, "sws grace reclaim");
    let (_, owner) = &out.results[0];
    let (_, thief) = &out.results[1];
    assert!(
        counter(owner, "claims_reclaimed") >= 1,
        "owner reclaimed nothing: {owner}"
    );
    assert!(
        counter(thief, "steals_aborted") >= 1,
        "thief reported no aborted steal: {thief}"
    );
}

// --- Schedule 5: SDC lock-handshake failure ----------------------------

#[test]
fn sdc_failed_metadata_read_releases_lock() {
    // Drop the thief's metadata Gets until 4 have failed: the thief holds
    // the victim's lock, cannot read head/split, and must hand the lock
    // back (insisting on the unlock) before reporting failure. A wedged
    // lock would livelock the later successful steals.
    let plan =
        FaultPlan::seeded(0xC4A0_2001).with_drop_limited(OpClass::Gets, TargetSel::Pe(0), 1.0, 4);
    let out = run_chaos(false, 2, 64, Some(plan), 20_000);
    assert_conserved(&out, 64, "sdc lock handshake");
    let (_, thief) = &out.results[1];
    assert!(
        counter(thief, "steals_failed") >= 1,
        "thief reported no failed steal: {thief}"
    );
}

// --- Schedule 6: crash-stop victim -------------------------------------

#[test]
fn crash_stop_victim_conserves_tasks() {
    // The victim crash-stops cooperatively: at its crash deadline it
    // retires the queue (draining every outstanding claim), executes
    // what it still owns, marks itself down, and exits without further
    // collectives. VClock barriers release without finished PEs, and
    // thief ops against the downed victim fail with `TargetDown`.
    for (use_sws, seed) in [(true, 0xC4A0_3001u64), (false, 0xC4A0_3002)] {
        let n_tasks = 96u64;
        let plan = FaultPlan::seeded(seed).with_crash(0, 60_000);
        let out = run_world(
            WorldConfig::virtual_time(3, 1 << 16).with_faults(plan),
            move |ctx| {
                let mut q = make_queue(ctx, use_sws, 5_000);
                let mut tags: Vec<u64> = Vec::new();
                if ctx.my_pe() == 0 {
                    for t in 0..n_tasks {
                        assert!(q.enqueue(&task(t)));
                    }
                    let _ = q.release();
                }
                ctx.barrier_all();
                if ctx.my_pe() == 0 {
                    loop {
                        if ctx.crash_due() {
                            q.retire();
                            loop {
                                while let Some(t) = q.pop_local() {
                                    tags.push(tag_of(&t));
                                }
                                if q.local_count() == 0 && !q.acquire() {
                                    break;
                                }
                            }
                            ctx.mark_self_down();
                            break;
                        }
                        ctx.compute(500);
                    }
                } else {
                    let mut attempts = 0u32;
                    loop {
                        attempts += 1;
                        assert!(attempts <= 500, "thief pe {} livelocked", ctx.my_pe());
                        match q.steal_from(0) {
                            StealOutcome::Got { .. } => {
                                attempts = 0;
                                while let Some(t) = q.pop_local() {
                                    tags.push(tag_of(&t));
                                }
                            }
                            StealOutcome::Empty | StealOutcome::Closed => break,
                            StealOutcome::Failed { target_down }
                            | StealOutcome::Aborted { target_down } => {
                                if target_down {
                                    break;
                                }
                            }
                        }
                    }
                    q.flush_completions();
                }
                tags
            },
        )
        .expect("crash world failed");
        let mut all: Vec<u64> = out.results.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..n_tasks).collect();
        assert_eq!(all, expect, "crash-stop conservation (sws={use_sws})");
    }
}

// --- Zero-overhead: inactive plans change nothing ----------------------

#[test]
fn inactive_plan_is_bit_identical_to_no_injector() {
    for use_sws in [true, false] {
        let runs: Vec<_> = [
            None,
            Some(FaultPlan::none()),
            // A seed without rules is still inactive: the injector is
            // dropped at world build, not merely quiescent.
            Some(FaultPlan::seeded(7)),
        ]
        .into_iter()
        .map(|plan| {
            let out = run_chaos(use_sws, 3, 120, plan, 200_000);
            assert_conserved(&out, 120, "bit-identical baseline");
            let per_pe: Vec<PeOut> = out.results.clone();
            let ops: Vec<String> = out.stats.per_pe.iter().map(|s| format!("{s:?}")).collect();
            (per_pe, ops, out.virtual_ns.clone(), out.makespan_ns())
        })
        .collect();
        assert_eq!(runs[0], runs[1], "FaultPlan::none() perturbed the run");
        assert_eq!(runs[0], runs[2], "rule-free seeded plan perturbed the run");
    }
}
