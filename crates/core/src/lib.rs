//! # sws-core — the paper's task queues
//!
//! This crate implements both work-stealing task queues evaluated in
//! *Optimizing Work Stealing Communication with Structured Atomic
//! Operations* (Cartier, Dinan & Larkins, ICPP 2021):
//!
//! * [`SdcQueue`] — the baseline **SDC** queue ("Split queue, Deferred
//!   copy, Aborting steals") from Scioto: a spinlock-guarded split circular
//!   buffer whose steal protocol needs **6 one-sided communications (5
//!   blocking)**: lock, fetch metadata, update tail, unlock, copy tasks,
//!   passive completion ack.
//! * [`SwsQueue`] — the contribution: queue metadata packed into a single
//!   64-bit [`stealval`] word so that one remote **atomic
//!   fetch-add simultaneously discovers and claims** a block of tasks.
//!   A steal needs **3 communications (2 blocking)**: fetch-add, copy
//!   tasks, passive completion notification. Completion epochs (§4.2)
//!   let the owner update the split point without waiting for in-flight
//!   steals; the Fig. 3 single-epoch layout is also implemented as the
//!   ablation baseline.
//!
//! Both queues implement [`StealQueue`], so the scheduler in `sws-sched`
//! runs either interchangeably. All remote interaction flows through
//! `sws-shmem`'s one-sided operations, which charge the modeled network
//! cost and count every message — the experiment harnesses verify the
//! 6-vs-3 (5-vs-2 blocking) communication counts directly.

#![warn(missing_docs)]

pub mod ordering;
pub mod queue;
pub mod ring;
pub mod steal_half;
pub mod stealval;

pub use ordering::{AtomicSite, DepClass, MemOrder, Necessity, Oracle, Weakening};
pub use queue::sdc::SdcQueue;
pub use queue::sws::SwsQueue;
pub use queue::{Mutation, QueueConfig, QueueStats, StealOutcome, StealQueue};
pub use stealval::EncodeError;
