//! The memory-ordering site catalog for the steal protocols.
//!
//! Every atomic operation the SWS and SDC protocols issue maps to one of
//! the *sites* enumerated here. The production orderings come from
//! `sws-shmem`'s op surface (remote RMWs are `AcqRel`, atomic reads
//! `Acquire`, atomic writes `Release` — see `shmem::ctx`); this catalog
//! names each site so that
//!
//! * the `sws-check` model checker can re-run its scenarios with one
//!   site's ordering weakened at a time and report which orderings are
//!   load-bearing (the `ORDERINGS.md` audit table at the repo root), and
//! * `// ordering: <Site>` comments at the call sites in `queue/sws.rs`,
//!   `queue/sdc.rs` and `shmem/src/ctx.rs` stay greppable and tied to a
//!   single source of truth.
//!
//! The catalog is deliberately `std`-free in its ordering type: the model
//! checker interprets [`MemOrder`] with its own operational semantics
//! rather than handing it to real CPU atomics.

/// A C11-style memory ordering, restricted to the four the protocols use.
/// (`SeqCst` is banned workspace-wide by `sws-lint`: every site must
/// justify its ordering pairwise, not lean on a global total order.)
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum MemOrder {
    /// No synchronization; atomicity only.
    Relaxed,
    /// Load half of a synchronizes-with edge.
    Acquire,
    /// Store half of a synchronizes-with edge.
    Release,
    /// Both halves (RMW sites).
    AcqRel,
}

impl MemOrder {
    /// Does a load (or the load half of an RMW) at this ordering acquire?
    pub fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel)
    }

    /// Does a store (or the store half of an RMW) at this ordering release?
    pub fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel)
    }

    /// Short name used in the audit table.
    pub fn name(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "Relaxed",
            MemOrder::Acquire => "Acquire",
            MemOrder::Release => "Release",
            MemOrder::AcqRel => "AcqRel",
        }
    }

    /// Is `self` at least as strong as `need` on the strength lattice
    /// `Relaxed < {Acquire, Release} < AcqRel` (the two halves are
    /// incomparable)? This is the one ordering-comparison in the
    /// workspace: the lint's annotation-evidence check and the necessity
    /// prover's mutant enumeration both consume it.
    pub fn satisfies(self, need: MemOrder) -> bool {
        match need {
            MemOrder::Relaxed => true,
            MemOrder::Acquire => self.acquires(),
            MemOrder::Release => self.releases(),
            MemOrder::AcqRel => self.acquires() && self.releases(),
        }
    }

    /// The orderings exactly one step weaker than `self` on the lattice:
    /// `AcqRel → {Acquire, Release}`, each half `→ Relaxed`, and
    /// `Relaxed` has nowhere left to fall. The necessity campaign walks
    /// these edges; anything a one-step weakening cannot break, a
    /// multi-step weakening cannot break either only if every
    /// intermediate also survives — which the campaign checks by
    /// weakening every site's every edge.
    pub fn weakenings(self) -> &'static [MemOrder] {
        match self {
            MemOrder::Relaxed => &[],
            MemOrder::Acquire | MemOrder::Release => &[MemOrder::Relaxed],
            MemOrder::AcqRel => &[MemOrder::Acquire, MemOrder::Release],
        }
    }
}

/// One mutation the necessity prover applies to a site.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Weakening {
    /// Replace the site's operative ordering with a one-step-weaker one.
    Order(MemOrder),
    /// Drop a compare-swap site's failure-path load ordering to
    /// `Relaxed` (the success ordering stays at production strength).
    CasFailure,
}

impl Weakening {
    /// Stable label used in verdict tables and schedule files.
    pub fn label(self) -> String {
        match self {
            Weakening::Order(o) => format!("to-{}", o.name().to_ascii_lowercase()),
            Weakening::CasFailure => "cas-fail-relaxed".into(),
        }
    }

    /// Inverse of [`Weakening::label`].
    pub fn from_label(s: &str) -> Option<Weakening> {
        match s {
            "to-relaxed" => Some(Weakening::Order(MemOrder::Relaxed)),
            "to-acquire" => Some(Weakening::Order(MemOrder::Acquire)),
            "to-release" => Some(Weakening::Order(MemOrder::Release)),
            "cas-fail-relaxed" => Some(Weakening::CasFailure),
            _ => None,
        }
    }
}

/// Which oracle produced a piece of necessity evidence.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum Oracle {
    /// The bounded model checker over the abstract protocol machines.
    Model,
    /// The live exploration scheduler driving the production queues.
    Live,
}

impl Oracle {
    /// Short name for verdict cells.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Model => "model",
            Oracle::Live => "live",
        }
    }
}

/// The machine-produced verdict for one (site, weakening) mutant.
///
/// `Broken` means an oracle exhibited a concrete failing execution —
/// the production ordering is *necessary* (at least as strong as the
/// weakening's target is insufficient). `ExhaustedAtBound` means every
/// oracle ran its full bounded search without a counterexample — honest
/// evidence of absence *within the bounds*, never a proof; the bounds
/// are recorded so the claim is auditable.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Necessity {
    /// A counterexample exists: the weakening is observable.
    Broken {
        /// Which oracle found it.
        oracle: Oracle,
        /// Violation kind tag (e.g. `stale-read`, `race`, `conservation`).
        kind: String,
        /// Witness pointer: the scenario name for the model oracle, the
        /// committed schedule-file name for the live oracle.
        witness: String,
    },
    /// Both oracles exhausted their bounds cleanly: a relaxation
    /// candidate, with the bounds that back the claim.
    ExhaustedAtBound {
        /// Human-readable bound summary (preemptions, schedules, steps).
        bounds: String,
    },
}

impl Necessity {
    /// Did any oracle break the mutant?
    pub fn is_broken(&self) -> bool {
        matches!(self, Necessity::Broken { .. })
    }
}

/// One atomic site in a steal protocol. Variant order is the order rows
/// appear in `ORDERINGS.md`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
#[allow(missing_docs)] // each variant is documented by `describe`
pub enum AtomicSite {
    // --- SWS (queue/sws.rs) ---
    /// Thief: the claim fetch-add on the stealval word.
    SwsThiefClaim,
    /// Owner: publishing a fresh advertisement (atomic_set of stealval).
    SwsOwnerAdvertise,
    /// Owner: closing the gate at acquire/retire (atomic_swap of stealval).
    SwsOwnerAcquireSwap,
    /// Owner: reading its own live stealval (read_sv in release/reclaim).
    SwsOwnerSvRead,
    /// Owner: zeroing a completion-slot set before an advertisement.
    SwsOwnerSlotZero,
    /// Thief: the passive completion notification (atomic_set_nbi of vol).
    SwsThiefComplete,
    /// Owner: reading completion slots during reclaim.
    SwsOwnerReclaimRead,
    /// Thief: the damped read-only probe of a victim's stealval (§4.3).
    SwsThiefProbe,
    /// Owner: writing task records into the ring (local_write, Release).
    SwsOwnerPayloadWrite,
    /// Thief: the per-word loads of the block-copy get.
    SwsThiefPayloadRead,
    // --- SDC (queue/sdc.rs) ---
    /// Thief/owner: the lock compare-swap.
    SdcLockCas,
    /// Thief/owner: the lock-release store.
    SdcUnlock,
    /// Thief: reading tail+split under the lock (one 16-byte get).
    SdcMetaRead,
    /// Thief: publishing the advanced tail (put under the lock).
    SdcTailPut,
    /// Owner: publishing a grown split in lock-free release.
    SdcSplitPublish,
    /// Owner: reading the published tail (release precondition/acquire).
    SdcOwnerTailRead,
    /// Thief: the deferred completion signal (atomic_set_nbi of vol).
    SdcComplete,
    /// Owner: reading completion-ring slots during progress.
    SdcReclaimRead,
    /// Owner: zeroing a consumed completion-ring slot during progress.
    SdcReclaimZero,
    /// Owner: writing task records into the ring (local_write, Release).
    SdcPayloadWrite,
    /// Thief: the per-word loads of the block-copy get.
    SdcPayloadRead,
}

impl AtomicSite {
    /// Every site, in audit-table order.
    pub const ALL: [AtomicSite; 21] = [
        AtomicSite::SwsThiefClaim,
        AtomicSite::SwsOwnerAdvertise,
        AtomicSite::SwsOwnerAcquireSwap,
        AtomicSite::SwsOwnerSvRead,
        AtomicSite::SwsOwnerSlotZero,
        AtomicSite::SwsThiefComplete,
        AtomicSite::SwsOwnerReclaimRead,
        AtomicSite::SwsThiefProbe,
        AtomicSite::SwsOwnerPayloadWrite,
        AtomicSite::SwsThiefPayloadRead,
        AtomicSite::SdcLockCas,
        AtomicSite::SdcUnlock,
        AtomicSite::SdcMetaRead,
        AtomicSite::SdcTailPut,
        AtomicSite::SdcSplitPublish,
        AtomicSite::SdcOwnerTailRead,
        AtomicSite::SdcComplete,
        AtomicSite::SdcReclaimRead,
        AtomicSite::SdcReclaimZero,
        AtomicSite::SdcPayloadWrite,
        AtomicSite::SdcPayloadRead,
    ];

    /// The ordering the production code uses at this site (the orderings
    /// `shmem::ctx` hardcodes for the op kind the site issues).
    pub fn production(self) -> MemOrder {
        use AtomicSite::*;
        match self {
            // RMWs.
            SwsThiefClaim | SwsOwnerAcquireSwap | SdcLockCas => MemOrder::AcqRel,
            // The owner's stealval read is staleness-tolerant by
            // construction — the attempted-steals counter is monotonic
            // per advertisement, so a stale read only under-reports and
            // the release/reclaim logic retries. Both necessity oracles
            // exhausted their bounds on the acquire→relaxed mutant
            // (see ORDERINGS.md and crates/check/schedules/), so
            // production runs it relaxed: on weakly-ordered hardware
            // this drops a fence from every owner-side release/reclaim
            // poll, the hot path the paper's single-word protocol is
            // built around.
            SwsOwnerSvRead => MemOrder::Relaxed,
            // Atomic / per-word loads.
            SwsOwnerReclaimRead | SwsThiefProbe | SwsThiefPayloadRead | SdcMetaRead
            | SdcOwnerTailRead | SdcReclaimRead | SdcPayloadRead => MemOrder::Acquire,
            // Atomic / per-word stores.
            SwsOwnerAdvertise | SwsOwnerSlotZero | SwsThiefComplete | SwsOwnerPayloadWrite
            | SdcUnlock | SdcTailPut | SdcSplitPublish | SdcComplete | SdcReclaimZero
            | SdcPayloadWrite => MemOrder::Release,
        }
    }

    /// Source location of the site (file: expression), for the audit table.
    pub fn location(self) -> &'static str {
        use AtomicSite::*;
        match self {
            SwsThiefClaim => "queue/sws.rs: steal_from atomic_fetch_add(sv)",
            SwsOwnerAdvertise => "queue/sws.rs: advertise atomic_set(sv)",
            SwsOwnerAcquireSwap => "queue/sws.rs: acquire/retire atomic_swap(sv)",
            SwsOwnerSvRead => "queue/sws.rs: read_sv atomic_fetch_ordered(sv)",
            SwsOwnerSlotZero => "queue/sws.rs: advertise atomic_set(comp[s], 0)",
            SwsThiefComplete => "queue/sws.rs: steal_from atomic_set_nbi(comp, vol)",
            SwsOwnerReclaimRead => "queue/sws.rs: reclaim atomic_fetch(comp)",
            SwsThiefProbe => "queue/sws.rs: probe atomic_fetch(sv)",
            SwsOwnerPayloadWrite => "queue/buffer.rs: write_local (SWS ring)",
            SwsThiefPayloadRead => "queue/buffer.rs: steal_copy get (SWS ring)",
            SdcLockCas => "queue/sdc.rs: atomic_compare_swap(lock, 0, 1)",
            SdcUnlock => "queue/sdc.rs: atomic_set(lock, 0)",
            SdcMetaRead => "queue/sdc.rs: get_words(tail, split)",
            SdcTailPut => "queue/sdc.rs: put_words(tail + vol)",
            SdcSplitPublish => "queue/sdc.rs: release atomic_set(split)",
            SdcOwnerTailRead => "queue/sdc.rs: read_tail atomic_fetch(tail)",
            SdcComplete => "queue/sdc.rs: atomic_set_nbi(comp, vol)",
            SdcReclaimRead => "queue/sdc.rs: progress atomic_fetch(comp)",
            SdcReclaimZero => "queue/sdc.rs: progress atomic_set(comp, 0)",
            SdcPayloadWrite => "queue/buffer.rs: write_local (SDC ring)",
            SdcPayloadRead => "queue/buffer.rs: steal_copy get (SDC ring)",
        }
    }

    /// Which protocol the site belongs to.
    pub fn protocol(self) -> &'static str {
        if matches!(
            self,
            AtomicSite::SwsThiefClaim
                | AtomicSite::SwsOwnerAdvertise
                | AtomicSite::SwsOwnerAcquireSwap
                | AtomicSite::SwsOwnerSvRead
                | AtomicSite::SwsOwnerSlotZero
                | AtomicSite::SwsThiefComplete
                | AtomicSite::SwsOwnerReclaimRead
                | AtomicSite::SwsThiefProbe
                | AtomicSite::SwsOwnerPayloadWrite
                | AtomicSite::SwsThiefPayloadRead
        ) {
            "SWS"
        } else {
            "SDC"
        }
    }

    /// Dense numeric id of this site: its index in [`AtomicSite::ALL`].
    /// The trace-capture layer in `sws-shmem` records sites as raw `u16`s
    /// (it cannot depend on this crate); this is the round-trip anchor.
    pub fn id(self) -> u16 {
        AtomicSite::ALL
            .iter()
            .position(|&s| s == self)
            .expect("every site is in ALL") as u16
    }

    /// Inverse of [`AtomicSite::id`]; `None` for ids outside the catalog
    /// (e.g. the capture layer's "unannotated op" sentinel).
    pub fn from_id(id: u16) -> Option<AtomicSite> {
        AtomicSite::ALL.get(id as usize).copied()
    }

    /// The dependence class of this site, used by the exploration
    /// scheduler's DPOR-style pruning: two gated ops can only be
    /// reordered into a new branch when their sites share a class (they
    /// touch the same protocol word family) *and* their word spans
    /// overlap with at least one writer. Sites in different classes are
    /// independent by construction — the SWS stealval word, completion
    /// slots, and ring payload live at disjoint symmetric addresses, as
    /// do the SDC lock, tail/split metadata, completion ring, and
    /// payload (see `queue/layout.rs`). Classing by family (rather than
    /// exact word) over-approximates conflicts — e.g. two different
    /// completion slots share a class — which can only add branches,
    /// never hide one, so pruning stays sound.
    pub fn dep_class(self) -> DepClass {
        use AtomicSite::*;
        match self {
            SwsThiefClaim | SwsOwnerAdvertise | SwsOwnerAcquireSwap | SwsOwnerSvRead
            | SwsThiefProbe => DepClass::SwsStealval,
            SwsOwnerSlotZero | SwsThiefComplete | SwsOwnerReclaimRead => DepClass::SwsCompletion,
            SwsOwnerPayloadWrite | SwsThiefPayloadRead => DepClass::SwsPayload,
            SdcLockCas | SdcUnlock => DepClass::SdcLock,
            SdcMetaRead | SdcTailPut | SdcSplitPublish | SdcOwnerTailRead => DepClass::SdcMeta,
            SdcComplete | SdcReclaimRead | SdcReclaimZero => DepClass::SdcCompletion,
            SdcPayloadWrite | SdcPayloadRead => DepClass::SdcPayload,
        }
    }

    /// Does this site issue a compare-swap, giving it a distinct
    /// failure-path load ordering the necessity prover can weaken
    /// separately? Only the SDC lock acquisition is a CAS on the
    /// fault-free path; the fault-mode confirm/poison CASes reuse the
    /// completion sites and keep their operative ordering.
    pub fn has_cas_failure_ordering(self) -> bool {
        matches!(self, AtomicSite::SdcLockCas)
    }

    /// Every mutation the necessity campaign applies to this site: one
    /// per lattice edge below the production ordering, plus the CAS
    /// failure-path weakening where the site has one.
    pub fn weakenings(self) -> Vec<Weakening> {
        let mut v: Vec<Weakening> = self
            .production()
            .weakenings()
            .iter()
            .map(|&o| Weakening::Order(o))
            .collect();
        if self.has_cas_failure_ordering() {
            v.push(Weakening::CasFailure);
        }
        v
    }

    /// Stable identifier used in audit rows and `// ordering:` comments.
    pub fn name(self) -> &'static str {
        use AtomicSite::*;
        match self {
            SwsThiefClaim => "SwsThiefClaim",
            SwsOwnerAdvertise => "SwsOwnerAdvertise",
            SwsOwnerAcquireSwap => "SwsOwnerAcquireSwap",
            SwsOwnerSvRead => "SwsOwnerSvRead",
            SwsOwnerSlotZero => "SwsOwnerSlotZero",
            SwsThiefComplete => "SwsThiefComplete",
            SwsOwnerReclaimRead => "SwsOwnerReclaimRead",
            SwsThiefProbe => "SwsThiefProbe",
            SwsOwnerPayloadWrite => "SwsOwnerPayloadWrite",
            SwsThiefPayloadRead => "SwsThiefPayloadRead",
            SdcLockCas => "SdcLockCas",
            SdcUnlock => "SdcUnlock",
            SdcMetaRead => "SdcMetaRead",
            SdcTailPut => "SdcTailPut",
            SdcSplitPublish => "SdcSplitPublish",
            SdcOwnerTailRead => "SdcOwnerTailRead",
            SdcComplete => "SdcComplete",
            SdcReclaimRead => "SdcReclaimRead",
            SdcReclaimZero => "SdcReclaimZero",
            SdcPayloadWrite => "SdcPayloadWrite",
            SdcPayloadRead => "SdcPayloadRead",
        }
    }
}

/// A family of protocol words whose sites may conflict with each other.
/// Sites in distinct classes never race: their words occupy disjoint
/// symmetric-heap ranges, so the exploration scheduler treats any pair
/// of ops from different classes as commuting (no schedule branch).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum DepClass {
    /// The SWS stealval word (claim, advertise, swap, reads, probes).
    SwsStealval,
    /// SWS completion slots (zero, thief signal, reclaim reads).
    SwsCompletion,
    /// SWS ring payload words (owner writes, thief block-copy reads).
    SwsPayload,
    /// The SDC lock word (CAS and release store).
    SdcLock,
    /// SDC tail + split metadata words.
    SdcMeta,
    /// SDC completion-ring slots.
    SdcCompletion,
    /// SDC ring payload words.
    SdcPayload,
}

impl DepClass {
    /// Short name for audit rows.
    pub fn name(self) -> &'static str {
        match self {
            DepClass::SwsStealval => "sws-stealval",
            DepClass::SwsCompletion => "sws-completion",
            DepClass::SwsPayload => "sws-payload",
            DepClass::SdcLock => "sdc-lock",
            DepClass::SdcMeta => "sdc-meta",
            DepClass::SdcCompletion => "sdc-completion",
            DepClass::SdcPayload => "sdc-payload",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_distinct() {
        let mut names: Vec<&str> = AtomicSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AtomicSite::ALL.len(), "duplicate site names");
    }

    #[test]
    fn ids_round_trip() {
        for (i, &s) in AtomicSite::ALL.iter().enumerate() {
            assert_eq!(s.id() as usize, i);
            assert_eq!(AtomicSite::from_id(s.id()), Some(s));
        }
        assert_eq!(AtomicSite::from_id(AtomicSite::ALL.len() as u16), None);
        assert_eq!(AtomicSite::from_id(u16::MAX), None);
    }

    #[test]
    fn dep_classes_stay_within_their_protocol() {
        for &s in AtomicSite::ALL.iter() {
            let class = s.dep_class().name();
            assert!(
                class.starts_with(&s.protocol().to_ascii_lowercase()),
                "{} is classed {class} but belongs to {}",
                s.name(),
                s.protocol()
            );
        }
    }

    #[test]
    fn lattice_satisfies_matches_acquire_release_semantics() {
        use MemOrder::*;
        for &a in &[Relaxed, Acquire, Release, AcqRel] {
            for &b in &[Relaxed, Acquire, Release, AcqRel] {
                // a satisfies b iff a carries every half b carries.
                let expect = (!b.acquires() || a.acquires()) && (!b.releases() || a.releases());
                assert_eq!(a.satisfies(b), expect, "{a:?} satisfies {b:?}");
            }
        }
        // The two halves are incomparable.
        assert!(!Acquire.satisfies(Release) && !Release.satisfies(Acquire));
    }

    #[test]
    fn weakening_edges_round_trip_strictly_down_the_lattice() {
        use MemOrder::*;
        for &m in &[Relaxed, Acquire, Release, AcqRel] {
            for &w in m.weakenings() {
                assert_ne!(m, w);
                assert!(m.satisfies(w), "{m:?} must dominate its weakening {w:?}");
                assert!(!w.satisfies(m), "{w:?} must be strictly weaker than {m:?}");
            }
        }
        assert!(Relaxed.weakenings().is_empty());
        assert_eq!(AcqRel.weakenings().len(), 2);
    }

    #[test]
    fn weakening_labels_round_trip() {
        use MemOrder::*;
        for w in [
            Weakening::Order(Relaxed),
            Weakening::Order(Acquire),
            Weakening::Order(Release),
            Weakening::CasFailure,
        ] {
            assert_eq!(Weakening::from_label(&w.label()), Some(w));
        }
        assert_eq!(Weakening::from_label("to-seq"), None);
    }

    #[test]
    fn site_weakenings_cover_every_lattice_edge_below_production() {
        for &s in AtomicSite::ALL.iter() {
            let ws = s.weakenings();
            let orders = ws
                .iter()
                .filter(|w| matches!(w, Weakening::Order(_)))
                .count();
            assert_eq!(orders, s.production().weakenings().len(), "{}", s.name());
            assert_eq!(
                ws.contains(&Weakening::CasFailure),
                s.has_cas_failure_ordering(),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn rmw_sites_are_acqrel() {
        for s in [
            AtomicSite::SwsThiefClaim,
            AtomicSite::SwsOwnerAcquireSwap,
            AtomicSite::SdcLockCas,
        ] {
            assert_eq!(s.production(), MemOrder::AcqRel);
            assert!(s.production().acquires() && s.production().releases());
        }
    }
}
