//! Circular-buffer index arithmetic.
//!
//! Both queues store task records in a fixed circular buffer in the
//! symmetric heap. Owners track *absolute* (monotonically increasing)
//! indices — head, split, reclaimed — and map them to ring slots on
//! access; thieves receive a ring index in the metadata and handle
//! wrap-around locally ("since task queues are of symmetric size, wrapping
//! steals can be determined locally, without communication", §4).

/// Index arithmetic for a ring of `capacity` task slots.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Ring {
    capacity: usize,
}

/// A block of `len` slots starting at ring index `start`, split into at
/// most two contiguous runs by the wrap point.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RingRange {
    /// First run: (start slot, length).
    pub first: (usize, usize),
    /// Second run after the wrap, if the block wraps: (0, length).
    pub second: Option<(usize, usize)>,
}

impl Ring {
    /// Ring over `capacity` slots.
    pub fn new(capacity: usize) -> Ring {
        assert!(capacity > 0, "ring capacity must be nonzero");
        Ring { capacity }
    }

    /// Number of slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ring slot of absolute index `abs`.
    #[inline]
    pub fn slot(&self, abs: u64) -> usize {
        (abs % self.capacity as u64) as usize
    }

    /// The (at most two) contiguous runs covering `len` slots starting at
    /// ring slot `start`.
    ///
    /// # Panics
    /// Panics if `len > capacity` (a block can never exceed the ring) or
    /// `start` is out of range.
    pub fn range(&self, start: usize, len: usize) -> RingRange {
        assert!(start < self.capacity, "start {start} out of range");
        assert!(
            len <= self.capacity,
            "block of {len} exceeds ring capacity {}",
            self.capacity
        );
        if start + len <= self.capacity {
            RingRange {
                first: (start, len),
                second: None,
            }
        } else {
            let first_len = self.capacity - start;
            RingRange {
                first: (start, first_len),
                second: Some((0, len - first_len)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrapped_block() {
        let r = Ring::new(16);
        assert_eq!(
            r.range(3, 5),
            RingRange {
                first: (3, 5),
                second: None
            }
        );
    }

    #[test]
    fn exactly_to_the_edge_does_not_wrap() {
        let r = Ring::new(16);
        assert_eq!(
            r.range(12, 4),
            RingRange {
                first: (12, 4),
                second: None
            }
        );
    }

    #[test]
    fn wrapped_block() {
        let r = Ring::new(16);
        assert_eq!(
            r.range(14, 5),
            RingRange {
                first: (14, 2),
                second: Some((0, 3))
            }
        );
    }

    #[test]
    fn full_ring_block() {
        let r = Ring::new(8);
        assert_eq!(
            r.range(0, 8),
            RingRange {
                first: (0, 8),
                second: None
            }
        );
        assert_eq!(
            r.range(5, 8),
            RingRange {
                first: (5, 3),
                second: Some((0, 5))
            }
        );
    }

    #[test]
    fn slot_wraps_absolute_indices() {
        let r = Ring::new(10);
        assert_eq!(r.slot(0), 0);
        assert_eq!(r.slot(9), 9);
        assert_eq!(r.slot(10), 0);
        assert_eq!(r.slot(25), 5);
        assert_eq!(r.slot(u64::MAX), (u64::MAX % 10) as usize);
    }

    #[test]
    #[should_panic(expected = "exceeds ring capacity")]
    fn oversized_block_rejected() {
        Ring::new(4).range(0, 5);
    }

    #[test]
    fn runs_cover_exactly_the_block() {
        let mut rng = sws_shmem::rng::SplitMix64::new(0x4149_6001);
        for _ in 0..2048 {
            let cap = 1 + rng.below(199) as usize;
            let start = rng.below(cap as u64) as usize;
            let len = rng.below(cap as u64 + 1) as usize;
            let r = Ring::new(cap);
            let rr = r.range(start, len);
            // Lengths sum to len.
            let total = rr.first.1 + rr.second.map_or(0, |s| s.1);
            assert_eq!(total, len);
            // Runs enumerate the same slots as abs-index iteration.
            let mut slots = Vec::new();
            slots.extend(rr.first.0..rr.first.0 + rr.first.1);
            if let Some((s, l)) = rr.second {
                assert_eq!(s, 0);
                slots.extend(s..s + l);
            }
            let expect: Vec<usize> = (0..len).map(|i| r.slot((start + i) as u64)).collect();
            assert_eq!(slots, expect);
        }
    }
}
