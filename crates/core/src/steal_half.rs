//! Steal-half arithmetic.
//!
//! Work-stealing performs best taking half the available work per steal
//! (Hendler & Shavit; paper §2). In SWS the *attempted-steals counter
//! alone* determines both the volume and the position of the block a thief
//! claims: with `T` tasks initially shared, steal `a` (0-based) takes
//! `max(1, remaining/2)` where `remaining = T - claimed_before(T, a)`.
//!
//! The paper's worked example (§4): `T = 150` yields the steal sequence
//! `{75, 37, 19, 9, 5, 2, 1, 1, 1}` — nine steals exhausting the queue.
//!
//! These are pure functions of `(T, a)`, so the thief computes its block
//! locally from the single fetched word — the heart of the one-round-trip
//! steal.

/// Number of tasks claimed by steal number `asteal` (0-based) against an
/// advertisement of `initial` tasks. Zero when nothing remains.
pub fn volume(initial: u64, asteal: u64) -> u64 {
    let mut rem = initial;
    let mut i = 0;
    while rem > 0 {
        let take = (rem / 2).max(1);
        if i == asteal {
            return take;
        }
        rem -= take;
        i += 1;
    }
    0
}

/// Total tasks claimed by steals `0..asteal` against `initial` tasks
/// (i.e. the offset of steal `asteal`'s block from the advertised tail).
pub fn claimed_before(initial: u64, asteal: u64) -> u64 {
    let mut rem = initial;
    let mut claimed = 0;
    let mut i = 0;
    while rem > 0 && i < asteal {
        let take = (rem / 2).max(1);
        claimed += take;
        rem -= take;
        i += 1;
    }
    claimed
}

/// Number of steals needed to exhaust `initial` tasks — the point past
/// which an attempted steal finds nothing ("if the number of attempted
/// steals is greater than log₂ of the initial tasks, no work remains").
pub fn max_steals(initial: u64) -> u64 {
    let mut rem = initial;
    let mut i = 0;
    while rem > 0 {
        rem -= (rem / 2).max(1);
        i += 1;
    }
    i
}

/// Upper bound on `max_steals` for any `initial` a queue can advertise
/// (19-bit itasks field ⇒ ≤ 2¹⁹−1 tasks ⇒ ≤ 20 steals). Used to size
/// completion arrays; one extra slot of headroom.
pub const MAX_STEAL_SLOTS: usize = 21;

/// How much of the remaining advertised work one steal claims.
///
/// SWS's single-fetch-add protocol works for *any* volume schedule that
/// is a pure function of `(itasks, asteal)` — the thief derives its
/// block locally from the fetched word. Steal-half is what the paper
/// (and Hendler & Shavit) show to be the sweet spot; the alternatives
/// exist for the `ablation_policy` experiment.
///
/// Because each advertisement owns a fixed completion-array slot set,
/// policies with more steals per advertisement must cap the
/// advertisement size ([`StealPolicy::max_advert`]) to fit
/// [`StealPolicy::slot_budget`] slots.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum StealPolicy {
    /// Take `max(1, remaining/2)` — the paper's policy.
    Half,
    /// Take a single task per steal (Cilk-style granularity).
    One,
    /// Take `max(1, remaining/4)` — a gentler split.
    Quarter,
}

impl StealPolicy {
    /// Tasks claimed by steal `asteal` (0-based) of an advertisement of
    /// `initial` tasks; 0 when nothing remains.
    pub fn volume(self, initial: u64, asteal: u64) -> u64 {
        match self {
            StealPolicy::Half => volume(initial, asteal),
            StealPolicy::One => u64::from(asteal < initial),
            StealPolicy::Quarter => {
                let mut rem = initial;
                let mut i = 0;
                while rem > 0 {
                    let take = (rem / 4).max(1);
                    if i == asteal {
                        return take;
                    }
                    rem -= take;
                    i += 1;
                }
                0
            }
        }
    }

    /// Sum of volumes of steals `0..asteal`.
    pub fn claimed_before(self, initial: u64, asteal: u64) -> u64 {
        match self {
            StealPolicy::Half => claimed_before(initial, asteal),
            StealPolicy::One => asteal.min(initial),
            StealPolicy::Quarter => {
                let mut rem = initial;
                let mut claimed = 0;
                let mut i = 0;
                while rem > 0 && i < asteal {
                    let take = (rem / 4).max(1);
                    claimed += take;
                    rem -= take;
                    i += 1;
                }
                claimed
            }
        }
    }

    /// Steals needed to exhaust `initial` tasks.
    pub fn max_steals(self, initial: u64) -> u64 {
        match self {
            StealPolicy::Half => max_steals(initial),
            StealPolicy::One => initial,
            StealPolicy::Quarter => {
                let mut rem = initial;
                let mut i = 0;
                while rem > 0 {
                    rem -= (rem / 4).max(1);
                    i += 1;
                }
                i
            }
        }
    }

    /// Completion-array slots reserved per advertisement.
    pub fn slot_budget(self) -> usize {
        match self {
            StealPolicy::Half => MAX_STEAL_SLOTS,
            StealPolicy::One => 64,
            StealPolicy::Quarter => 64,
        }
    }

    /// Largest advertisement whose steal count fits the slot budget.
    pub fn max_advert(self, field_limit: u64) -> u64 {
        match self {
            StealPolicy::Half => field_limit, // ≤ 20 steals for 2^19 tasks
            StealPolicy::One => (self.slot_budget() as u64).min(field_limit),
            StealPolicy::Quarter => {
                // slot_budget steals of ≥ remaining/4 each exhaust any
                // advertisement up to this bound; find it by doubling.
                let budget = self.slot_budget() as u64;
                let mut hi = 1u64;
                while hi < field_limit && self.max_steals(hi * 2) <= budget {
                    hi *= 2;
                }
                hi.min(field_limit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sws_shmem::rng::SplitMix64;

    #[test]
    fn paper_example_sequence() {
        let expect = [75u64, 37, 19, 9, 5, 2, 1, 1, 1];
        for (a, &want) in expect.iter().enumerate() {
            assert_eq!(volume(150, a as u64), want, "steal {a}");
        }
        assert_eq!(max_steals(150), 9);
        assert_eq!(volume(150, 9), 0);
        assert_eq!(volume(150, 1_000_000), 0);
    }

    #[test]
    fn paper_example_offsets() {
        // Third steal (a = 2) starts at tail + 75 + 37 = tail + 112 and
        // takes 19 tasks (§4's worked example with tail = 500 → index 612).
        assert_eq!(claimed_before(150, 2), 112);
        assert_eq!(500 + claimed_before(150, 2), 612);
        assert_eq!(volume(150, 2), 19);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(max_steals(0), 0);
        assert_eq!(volume(0, 0), 0);
        assert_eq!(claimed_before(0, 5), 0);

        assert_eq!(volume(1, 0), 1);
        assert_eq!(max_steals(1), 1);

        assert_eq!(volume(2, 0), 1);
        assert_eq!(volume(2, 1), 1);
        assert_eq!(max_steals(2), 2);

        assert_eq!(volume(3, 0), 1);
        assert_eq!(volume(3, 1), 1);
        assert_eq!(volume(3, 2), 1);
        assert_eq!(max_steals(3), 3);
    }

    #[test]
    fn slots_bound_covers_max_itasks() {
        let max_itasks = (1u64 << 19) - 1;
        assert!(max_steals(max_itasks) as usize <= MAX_STEAL_SLOTS);
        // And the bound is tight-ish, not wildly oversized.
        assert!(max_steals(max_itasks) as usize >= MAX_STEAL_SLOTS - 2);
    }

    #[test]
    fn volumes_partition_the_initial_tasks() {
        let mut rng = SplitMix64::new(0x5EA1_0001);
        for _ in 0..512 {
            let initial = rng.below(1 << 19);
            let n = max_steals(initial);
            let total: u64 = (0..n).map(|a| volume(initial, a)).sum();
            assert_eq!(total, initial);
            assert_eq!(claimed_before(initial, n), initial);
            assert_eq!(volume(initial, n), 0);
        }
    }

    #[test]
    fn volumes_are_nonincreasing() {
        let mut rng = SplitMix64::new(0x5EA1_0002);
        for _ in 0..512 {
            let initial = 1 + rng.below((1 << 19) - 1);
            let n = max_steals(initial);
            for a in 1..n {
                assert!(volume(initial, a) <= volume(initial, a - 1));
            }
            assert!(volume(initial, 0) >= 1);
        }
    }

    #[test]
    fn claimed_is_prefix_sum() {
        let mut rng = SplitMix64::new(0x5EA1_0003);
        for _ in 0..512 {
            let initial = rng.below(1 << 19);
            let a = rng.below(25);
            let by_sum: u64 = (0..a).map(|i| volume(initial, i)).sum();
            assert_eq!(claimed_before(initial, a), by_sum);
        }
    }

    #[test]
    fn first_steal_takes_half() {
        let mut rng = SplitMix64::new(0x5EA1_0004);
        for _ in 0..512 {
            let initial = 2 + rng.below((1 << 19) - 2);
            assert_eq!(volume(initial, 0), initial / 2);
        }
    }

    #[test]
    fn max_steals_is_logarithmic() {
        let mut rng = SplitMix64::new(0x5EA1_0005);
        for _ in 0..512 {
            let initial = 1 + rng.below((1 << 19) - 1);
            let n = max_steals(initial);
            // ~log2(T) + small tail; certainly within the slot bound.
            assert!(n <= 64 - initial.leading_zeros() as u64 + 2);
            assert!(n as usize <= MAX_STEAL_SLOTS);
        }
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use sws_shmem::rng::SplitMix64;

    const POLICIES: [StealPolicy; 3] =
        [StealPolicy::Half, StealPolicy::One, StealPolicy::Quarter];

    #[test]
    fn half_policy_matches_free_functions() {
        for t in [0u64, 1, 2, 150, 1000] {
            for a in 0..12 {
                assert_eq!(StealPolicy::Half.volume(t, a), volume(t, a));
                assert_eq!(
                    StealPolicy::Half.claimed_before(t, a),
                    claimed_before(t, a)
                );
            }
            assert_eq!(StealPolicy::Half.max_steals(t), max_steals(t));
        }
    }

    #[test]
    fn one_policy_takes_single_tasks() {
        let p = StealPolicy::One;
        assert_eq!(p.volume(5, 0), 1);
        assert_eq!(p.volume(5, 4), 1);
        assert_eq!(p.volume(5, 5), 0);
        assert_eq!(p.claimed_before(5, 3), 3);
        assert_eq!(p.max_steals(5), 5);
    }

    #[test]
    fn advert_caps_fit_slot_budgets() {
        for p in POLICIES {
            let cap = p.max_advert((1 << 19) - 1);
            assert!(cap >= 1);
            assert!(
                p.max_steals(cap) <= p.slot_budget() as u64,
                "{p:?}: {} steals for advert {cap} exceeds {} slots",
                p.max_steals(cap),
                p.slot_budget()
            );
        }
    }

    #[test]
    fn policies_partition_the_advertisement() {
        let mut rng = SplitMix64::new(0x5EA1_0006);
        for _ in 0..768 {
            let p = POLICIES[rng.below(3) as usize];
            let initial = rng.below(4097);
            let n = p.max_steals(initial);
            let total: u64 = (0..n).map(|a| p.volume(initial, a)).sum();
            assert_eq!(total, initial);
            assert_eq!(p.claimed_before(initial, n), initial);
            assert_eq!(p.volume(initial, n), 0);
        }
    }

    #[test]
    fn policy_claimed_is_prefix_sum() {
        let mut rng = SplitMix64::new(0x5EA1_0007);
        for _ in 0..768 {
            let p = POLICIES[rng.below(3) as usize];
            let initial = rng.below(4097);
            let a = rng.below(64);
            let by_sum: u64 = (0..a).map(|i| p.volume(initial, i)).sum();
            assert_eq!(p.claimed_before(initial, a), by_sum);
        }
    }
}
