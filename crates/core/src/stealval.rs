//! The packed 64-bit `stealval` (paper Figs. 3 and 4).
//!
//! The whole point of SWS is that everything a thief needs in order to
//! *discover and claim* work fits one 64-bit word, so one remote atomic
//! fetch-add does both. The word is split so that **initiators only ever
//! modify the top 24 bits** (the attempted-steals counter, bumped by
//! [`ASTEAL_UNIT`]) while **the owner only rewrites the low 40 bits**
//! (gate, initial tasks, tail). Placing `asteals` in the topmost bits
//! means a counter overflow carries *out of the word* instead of
//! corrupting owner fields; steal damping (§4.3) keeps the counter from
//! wrapping in the first place.
//!
//! Two layouts are implemented:
//!
//! * **Fig. 3** (`Layout::ValidBit`): `asteals:24 | valid:1 | itasks:19 |
//!   tail:20` — the initial design, where an acquire must wait for all
//!   in-flight steals before reusing the single completion array.
//! * **Fig. 4** (`Layout::Epochs`): `asteals:24 | epoch:2 | itasks:19 |
//!   tail:19` — completion epochs; an epoch value above
//!   [`MAX_EPOCHS`]`-1` means the queue is locked by the owner.

/// Bits in the attempted-steals counter.
pub const ASTEALS_BITS: u32 = 24;
/// Bit position of the attempted-steals field (it occupies the top bits).
pub const ASTEALS_SHIFT: u32 = 64 - ASTEALS_BITS;
/// The value a thief fetch-adds to claim the next block: one unit of the
/// `asteals` field.
pub const ASTEAL_UNIT: u64 = 1 << ASTEALS_SHIFT;
/// Mask of the attempted-steals field after shifting.
pub const ASTEALS_MASK: u64 = (1 << ASTEALS_BITS) - 1;

/// Bits in the initial-tasks field (both layouts).
pub const ITASKS_BITS: u32 = 19;
/// Number of completion epochs in the Fig. 4 layout. The paper found two
/// sufficient to avoid acquire-time polling (§4.2).
pub const MAX_EPOCHS: usize = 2;

/// Which stealval layout a queue uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Layout {
    /// Fig. 3: single valid bit, 20-bit tail, one completion array.
    ValidBit,
    /// Fig. 4: 2-bit epoch, 19-bit tail, per-epoch completion arrays.
    Epochs,
}

/// Whether thieves may currently claim from the queue, and under which
/// completion epoch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Gate {
    /// Steals enabled; completions post to `epoch`'s array (always 0 in
    /// the Fig. 3 layout).
    Open {
        /// Active completion epoch index.
        epoch: u8,
    },
    /// Steals disabled: the owner is updating the split point, or the
    /// queue is shut down.
    Closed,
}

/// Why a [`StealVal`] cannot be packed into a raw word.
///
/// Field packing is *checked*: a value that does not fit its bit field is
/// an owner-side bug, and silently truncating it would corrupt a
/// neighbouring field (e.g. an oversized `tail` bleeding into `itasks`).
/// [`Layout::try_encode`] surfaces the overflow; [`Layout::encode`] keeps
/// the panicking contract for call sites that have already validated
/// their fields against [`Layout::max_itasks`]/[`Layout::max_tail`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// `itasks` exceeds the 19-bit field.
    ItasksOverflow {
        /// The offending value.
        itasks: u32,
        /// Largest encodable value.
        max: u32,
    },
    /// `tail` exceeds the layout's tail field.
    TailOverflow {
        /// The offending value.
        tail: u32,
        /// Largest encodable value.
        max: u32,
    },
    /// `asteals` exceeds the 24-bit counter. (The *protocol* wraps the
    /// counter via fetch-add carry-out; constructing an over-wide value
    /// from decoded fields is a bug.)
    AstealsOverflow {
        /// The offending value.
        asteals: u32,
    },
    /// An open gate names an epoch the layout does not have.
    EpochOutOfRange {
        /// The offending epoch index.
        epoch: u8,
        /// Number of epochs the layout supports.
        n_epochs: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EncodeError::ItasksOverflow { itasks, max } => {
                write!(f, "itasks {itasks} exceeds {ITASKS_BITS}-bit field (max {max})")
            }
            EncodeError::TailOverflow { tail, max } => {
                write!(f, "tail {tail} exceeds field (max {max})")
            }
            EncodeError::AstealsOverflow { asteals } => {
                write!(f, "asteals {asteals} exceeds {ASTEALS_BITS}-bit field")
            }
            EncodeError::EpochOutOfRange { epoch, n_epochs } => {
                write!(f, "epoch {epoch} exceeds range (< {n_epochs})")
            }
        }
    }
}

/// A decoded stealval.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StealVal {
    /// Steal attempts against the current advertisement (thief-owned).
    pub asteals: u32,
    /// Steal gate / epoch (owner-owned).
    pub gate: Gate,
    /// Tasks initially placed in the shared portion (owner-owned).
    pub itasks: u32,
    /// Ring index of the first shared task (owner-owned).
    pub tail: u32,
}

impl StealVal {
    /// A fresh, open, empty advertisement under epoch 0.
    pub fn empty() -> StealVal {
        StealVal {
            asteals: 0,
            gate: Gate::Open { epoch: 0 },
            itasks: 0,
            tail: 0,
        }
    }
}

impl Layout {
    /// Bits in the tail field.
    pub const fn tail_bits(self) -> u32 {
        match self {
            Layout::ValidBit => 20,
            Layout::Epochs => 19,
        }
    }

    /// Largest encodable tail ring index.
    pub const fn max_tail(self) -> u32 {
        (1 << self.tail_bits()) - 1
    }

    /// Largest encodable initial-tasks count.
    pub const fn max_itasks(self) -> u32 {
        (1 << ITASKS_BITS) - 1
    }

    /// Number of completion epochs this layout supports.
    pub const fn n_epochs(self) -> usize {
        match self {
            Layout::ValidBit => 1,
            Layout::Epochs => MAX_EPOCHS,
        }
    }

    /// Encode a decoded stealval, surfacing field overflow as an error
    /// instead of truncating or panicking. Checked packing: every field is
    /// validated against its bit width before any shifting happens, so a
    /// bad value can never bleed into a neighbouring field.
    pub fn try_encode(self, sv: StealVal) -> Result<u64, EncodeError> {
        if sv.itasks > self.max_itasks() {
            return Err(EncodeError::ItasksOverflow {
                itasks: sv.itasks,
                max: self.max_itasks(),
            });
        }
        if sv.tail > self.max_tail() {
            return Err(EncodeError::TailOverflow {
                tail: sv.tail,
                max: self.max_tail(),
            });
        }
        if sv.asteals as u64 > ASTEALS_MASK {
            return Err(EncodeError::AstealsOverflow { asteals: sv.asteals });
        }
        let asteals = (sv.asteals as u64) << ASTEALS_SHIFT;
        Ok(match self {
            Layout::ValidBit => {
                let valid = match sv.gate {
                    Gate::Open { epoch } => {
                        if epoch != 0 {
                            return Err(EncodeError::EpochOutOfRange {
                                epoch,
                                n_epochs: 1,
                            });
                        }
                        1u64
                    }
                    Gate::Closed => 0u64,
                };
                asteals | (valid << 39) | ((sv.itasks as u64) << 20) | sv.tail as u64
            }
            Layout::Epochs => {
                let epoch = match sv.gate {
                    Gate::Open { epoch } => {
                        if (epoch as usize) >= MAX_EPOCHS {
                            return Err(EncodeError::EpochOutOfRange {
                                epoch,
                                n_epochs: MAX_EPOCHS,
                            });
                        }
                        epoch as u64
                    }
                    // Any value above MAX_EPOCHS-1 signals "locked"; use
                    // the all-ones pattern.
                    Gate::Closed => 0b11,
                };
                asteals | (epoch << 38) | ((sv.itasks as u64) << 19) | sv.tail as u64
            }
        })
    }

    /// Encode a decoded stealval.
    ///
    /// # Panics
    /// Panics if `itasks`, `tail`, or `asteals` exceed their fields, or if
    /// an epoch index is out of range — these are owner-side bugs, not
    /// recoverable runtime conditions. Use [`Layout::try_encode`] where
    /// the fields come from untrusted arithmetic.
    pub fn encode(self, sv: StealVal) -> u64 {
        match self.try_encode(sv) {
            Ok(v) => v,
            Err(e) => panic!("stealval encode: {e}"),
        }
    }

    /// Decode a raw stealval word.
    pub fn decode(self, v: u64) -> StealVal {
        let asteals = ((v >> ASTEALS_SHIFT) & ASTEALS_MASK) as u32;
        match self {
            Layout::ValidBit => StealVal {
                asteals,
                gate: if (v >> 39) & 1 == 1 {
                    Gate::Open { epoch: 0 }
                } else {
                    Gate::Closed
                },
                itasks: ((v >> 20) & ((1 << ITASKS_BITS) - 1)) as u32,
                tail: (v & ((1 << 20) - 1)) as u32,
            },
            Layout::Epochs => {
                let epoch = ((v >> 38) & 0b11) as u8;
                StealVal {
                    asteals,
                    gate: if (epoch as usize) < MAX_EPOCHS {
                        Gate::Open { epoch }
                    } else {
                        Gate::Closed
                    },
                    itasks: ((v >> 19) & ((1 << ITASKS_BITS) - 1)) as u32,
                    tail: (v & ((1 << 19) - 1)) as u32,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> [Layout; 2] {
        [Layout::ValidBit, Layout::Epochs]
    }

    #[test]
    fn paper_example_figure3() {
        // Fig. 3: asteals = 2, valid, 150 initial tasks, tail at 500.
        let sv = StealVal {
            asteals: 2,
            gate: Gate::Open { epoch: 0 },
            itasks: 150,
            tail: 500,
        };
        let v = Layout::ValidBit.encode(sv);
        assert_eq!(Layout::ValidBit.decode(v), sv);
        // Field placement: the top 24 bits hold asteals.
        assert_eq!(v >> ASTEALS_SHIFT, 2);
        assert_eq!(v & ((1 << 20) - 1), 500);
    }

    #[test]
    fn roundtrip_extremes() {
        for layout in layouts() {
            for asteals in [0, 1, 0xFF_FFFF] {
                for itasks in [0, 1, layout.max_itasks()] {
                    for tail in [0, 1, layout.max_tail()] {
                        for gate in [Gate::Open { epoch: 0 }, Gate::Closed] {
                            let sv = StealVal {
                                asteals,
                                gate,
                                itasks,
                                tail,
                            };
                            assert_eq!(layout.decode(layout.encode(sv)), sv, "{layout:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn epochs_roundtrip_all_epochs() {
        for e in 0..MAX_EPOCHS as u8 {
            let sv = StealVal {
                asteals: 7,
                gate: Gate::Open { epoch: e },
                itasks: 1234,
                tail: 99,
            };
            assert_eq!(Layout::Epochs.decode(Layout::Epochs.encode(sv)), sv);
        }
    }

    #[test]
    fn fetch_add_only_touches_asteals() {
        for layout in layouts() {
            let sv = StealVal {
                asteals: 5,
                gate: Gate::Open { epoch: 0 },
                itasks: 150,
                tail: 500,
            };
            let v = layout.encode(sv).wrapping_add(ASTEAL_UNIT);
            let d = layout.decode(v);
            assert_eq!(d.asteals, 6);
            assert_eq!(d.itasks, 150);
            assert_eq!(d.tail, 500);
            assert_eq!(d.gate, Gate::Open { epoch: 0 });
        }
    }

    #[test]
    fn asteals_overflow_carries_out_of_the_word() {
        // At the 24-bit limit one more fetch-add wraps asteals to zero but
        // must not corrupt any owner field — the motivation for placing
        // asteals in the topmost bits (§4.3).
        for layout in layouts() {
            let sv = StealVal {
                asteals: 0xFF_FFFF,
                gate: Gate::Open { epoch: 0 },
                itasks: 150,
                tail: 500,
            };
            let v = layout.encode(sv).wrapping_add(ASTEAL_UNIT);
            let d = layout.decode(v);
            assert_eq!(d.asteals, 0);
            assert_eq!(d.itasks, 150);
            assert_eq!(d.tail, 500);
            assert_eq!(d.gate, Gate::Open { epoch: 0 });
        }
    }

    #[test]
    fn closed_gate_survives_fetch_adds() {
        for layout in layouts() {
            let v = layout.encode(StealVal {
                asteals: 0,
                gate: Gate::Closed,
                itasks: 0,
                tail: 3,
            });
            let bumped = v.wrapping_add(ASTEAL_UNIT * 17);
            assert_eq!(layout.decode(bumped).gate, Gate::Closed);
            assert_eq!(layout.decode(bumped).tail, 3);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_itasks_rejected() {
        let _ = Layout::Epochs.encode(StealVal {
            asteals: 0,
            gate: Gate::Open { epoch: 0 },
            itasks: 1 << ITASKS_BITS,
            tail: 0,
        });
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_tail_rejected() {
        let _ = Layout::Epochs.encode(StealVal {
            asteals: 0,
            gate: Gate::Open { epoch: 0 },
            itasks: 0,
            tail: 1 << 19,
        });
    }

    #[test]
    fn try_encode_accepts_every_field_boundary() {
        // Largest value of every field must round-trip exactly.
        for layout in layouts() {
            let sv = StealVal {
                asteals: (1 << ASTEALS_BITS) - 1, // 2^24 - 1
                gate: Gate::Open { epoch: 0 },
                itasks: layout.max_itasks(), // 2^19 - 1
                tail: layout.max_tail(),
            };
            let v = layout.try_encode(sv).expect("boundary values must fit");
            assert_eq!(layout.decode(v), sv, "{layout:?}");
        }
    }

    #[test]
    fn try_encode_rejects_one_past_each_boundary() {
        let base = StealVal::empty();
        for layout in layouts() {
            assert_eq!(
                layout.try_encode(StealVal {
                    itasks: layout.max_itasks() + 1,
                    ..base
                }),
                Err(EncodeError::ItasksOverflow {
                    itasks: layout.max_itasks() + 1,
                    max: layout.max_itasks()
                }),
                "{layout:?}"
            );
            assert_eq!(
                layout.try_encode(StealVal {
                    tail: layout.max_tail() + 1,
                    ..base
                }),
                Err(EncodeError::TailOverflow {
                    tail: layout.max_tail() + 1,
                    max: layout.max_tail()
                }),
                "{layout:?}"
            );
            assert_eq!(
                layout.try_encode(StealVal {
                    asteals: 1 << ASTEALS_BITS,
                    ..base
                }),
                Err(EncodeError::AstealsOverflow {
                    asteals: 1 << ASTEALS_BITS
                }),
                "{layout:?}"
            );
        }
    }

    #[test]
    fn try_encode_epoch_rollover_is_checked_not_wrapped() {
        // Epoch MAX_EPOCHS-1 is the last valid open epoch; MAX_EPOCHS and
        // beyond must be rejected (the encoding reserves those bit
        // patterns for the closed gate), never wrapped back to epoch 0.
        let last = (MAX_EPOCHS - 1) as u8;
        let sv = StealVal {
            gate: Gate::Open { epoch: last },
            ..StealVal::empty()
        };
        let v = Layout::Epochs.try_encode(sv).unwrap();
        assert_eq!(Layout::Epochs.decode(v).gate, Gate::Open { epoch: last });
        for epoch in [MAX_EPOCHS as u8, MAX_EPOCHS as u8 + 1, u8::MAX] {
            assert_eq!(
                Layout::Epochs.try_encode(StealVal {
                    gate: Gate::Open { epoch },
                    ..StealVal::empty()
                }),
                Err(EncodeError::EpochOutOfRange {
                    epoch,
                    n_epochs: MAX_EPOCHS
                })
            );
        }
        // ValidBit has a single epoch: epoch 1 is out of range, not "valid".
        assert_eq!(
            Layout::ValidBit.try_encode(StealVal {
                gate: Gate::Open { epoch: 1 },
                ..StealVal::empty()
            }),
            Err(EncodeError::EpochOutOfRange {
                epoch: 1,
                n_epochs: 1
            })
        );
        // Raw words whose epoch bits exceed MAX_EPOCHS-1 decode as Closed
        // (the "locked" sentinel) — rollover cannot fabricate an open gate.
        for raw_epoch in [0b10u64, 0b11] {
            let v = raw_epoch << 38;
            assert_eq!(Layout::Epochs.decode(v).gate, Gate::Closed);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_asteals_rejected_by_encode() {
        let _ = Layout::Epochs.encode(StealVal {
            asteals: 1 << ASTEALS_BITS,
            ..StealVal::empty()
        });
    }

    #[test]
    fn layout_capacities_match_figures() {
        assert_eq!(Layout::ValidBit.max_tail(), (1 << 20) - 1);
        assert_eq!(Layout::Epochs.max_tail(), (1 << 19) - 1);
        assert_eq!(Layout::ValidBit.max_itasks(), (1 << 19) - 1);
        assert_eq!(Layout::ValidBit.n_epochs(), 1);
        assert_eq!(Layout::Epochs.n_epochs(), 2);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use sws_shmem::rng::SplitMix64;

    fn layout_from(bit: u64) -> Layout {
        if bit & 1 == 0 {
            Layout::ValidBit
        } else {
            Layout::Epochs
        }
    }

    /// Gate from a small index, valid for the layout.
    fn gate_for(layout: Layout, idx: u8) -> Gate {
        let open_variants = layout.n_epochs() as u8;
        if idx % (open_variants + 1) == open_variants {
            Gate::Closed
        } else {
            Gate::Open {
                epoch: idx % open_variants,
            }
        }
    }

    #[test]
    fn roundtrip_any_field_combination() {
        let mut rng = SplitMix64::new(0x57E4_0001);
        for _ in 0..2048 {
            let layout = layout_from(rng.next_u64());
            let asteals = rng.below(1 << ASTEALS_BITS) as u32;
            let itasks = rng.below(1 << ITASKS_BITS) as u32;
            let tail = rng.below(layout.max_tail() as u64 + 1) as u32;
            let gate = gate_for(layout, rng.next_u64() as u8);
            let sv = StealVal {
                asteals,
                gate,
                itasks,
                tail,
            };
            assert_eq!(layout.decode(layout.encode(sv)), sv, "{layout:?}");
        }
    }

    #[test]
    fn any_number_of_fetch_adds_preserves_owner_fields() {
        let mut rng = SplitMix64::new(0x57E4_0002);
        for _ in 0..2048 {
            let layout = layout_from(rng.next_u64());
            let itasks = rng.below(1 << ITASKS_BITS) as u32;
            let tail = rng.below(layout.max_tail() as u64 + 1) as u32;
            let adds = rng.below(100_000);
            let sv = StealVal {
                asteals: 0,
                gate: Gate::Open { epoch: 0 },
                itasks,
                tail,
            };
            let raw = layout
                .encode(sv)
                .wrapping_add(ASTEAL_UNIT.wrapping_mul(adds));
            let d = layout.decode(raw);
            assert_eq!(d.itasks, itasks);
            assert_eq!(d.tail, tail);
            assert_eq!(d.gate, Gate::Open { epoch: 0 });
            assert_eq!(d.asteals as u64, adds & 0xFF_FFFF);
        }
    }
}
