//! The circular task buffer both queues store records in.
//!
//! Owner-side access (enqueue/pop of the local portion) is plain local
//! memory traffic — uncharged, exactly as in the paper where local queue
//! operations are lock-free memcpys. Thief-side block copies go through
//! charged one-sided `get`s, using a single gather operation when the
//! block wraps the ring.

use sws_shmem::{ShmemCtx, SymAddr};
use sws_task::TaskDescriptor;

use crate::ring::Ring;

/// Words in the largest possible task record (`MAX_TASK_BYTES / 8`).
pub(crate) const MAX_RECORD_WORDS: usize = sws_task::MAX_TASK_BYTES / 8;

/// Word-level view of a ring of fixed-size task records.
#[derive(Copy, Clone, Debug)]
pub(crate) struct TaskBuffer {
    base: SymAddr,
    ring: Ring,
    task_words: usize,
}

impl TaskBuffer {
    pub(crate) fn new(base: SymAddr, capacity: usize, task_words: usize) -> TaskBuffer {
        assert!(
            task_words <= MAX_RECORD_WORDS,
            "task records of {task_words} words exceed the {MAX_RECORD_WORDS}-word limit"
        );
        TaskBuffer {
            base,
            ring: Ring::new(capacity),
            task_words,
        }
    }

    #[inline]
    pub(crate) fn ring(&self) -> Ring {
        self.ring
    }

    /// Symmetric address of ring slot `slot`.
    #[inline]
    pub(crate) fn slot_addr(&self, slot: usize) -> SymAddr {
        self.base.offset(slot * self.task_words)
    }

    /// Owner: write a task record at absolute index `abs` (local, free).
    /// Allocation-free: records fit a stack buffer by construction.
    pub(crate) fn write_local(&self, ctx: &ShmemCtx, abs: u64, task: &TaskDescriptor) {
        let mut rec = [0u64; MAX_RECORD_WORDS];
        let rec = &mut rec[..self.task_words];
        task.encode(rec);
        ctx.local_write_words(self.slot_addr(self.ring.slot(abs)), rec);
    }

    /// Owner: read the task record at absolute index `abs` (local, free).
    pub(crate) fn read_local(&self, ctx: &ShmemCtx, abs: u64) -> TaskDescriptor {
        let mut rec = [0u64; MAX_RECORD_WORDS];
        let rec = &mut rec[..self.task_words];
        ctx.local_read_words(self.slot_addr(self.ring.slot(abs)), rec);
        TaskDescriptor::decode(rec)
    }

    /// Owner: bulk-write `n` records (raw words) starting at absolute
    /// index `abs` — used to land stolen blocks in the local portion.
    pub(crate) fn write_local_block(&self, ctx: &ShmemCtx, abs: u64, n: usize, words: &[u64]) {
        assert_eq!(words.len(), n * self.task_words);
        let rr = self.ring.range(self.ring.slot(abs), n);
        let first_words = rr.first.1 * self.task_words;
        ctx.local_write_words(self.slot_addr(rr.first.0), &words[..first_words]);
        if let Some((s, _)) = rr.second {
            ctx.local_write_words(self.slot_addr(s), &words[first_words..]);
        }
    }

    /// Thief: copy `n` records starting at ring slot `start` from
    /// `target`'s buffer into `out` — one charged `get`, gathering across
    /// the wrap point if needed.
    pub(crate) fn steal_copy(
        &self,
        ctx: &ShmemCtx,
        target: usize,
        start: usize,
        n: usize,
        out: &mut Vec<u64>,
    ) {
        out.clear();
        out.resize(n * self.task_words, 0);
        let rr = self.ring.range(start, n);
        match rr.second {
            None => ctx.get_words(target, self.slot_addr(rr.first.0), out),
            Some((s, l)) => {
                let a = (self.slot_addr(rr.first.0), rr.first.1 * self.task_words);
                let b = (self.slot_addr(s), l * self.task_words);
                ctx.get_words_gather(target, a, b, out);
            }
        }
    }

    /// Fallible form of [`TaskBuffer::steal_copy`] for fault-injected
    /// worlds: the single get (or gather) can be dropped or time out.
    pub(crate) fn try_steal_copy(
        &self,
        ctx: &ShmemCtx,
        target: usize,
        start: usize,
        n: usize,
        out: &mut Vec<u64>,
    ) -> sws_shmem::OpResult<()> {
        out.clear();
        out.resize(n * self.task_words, 0);
        let rr = self.ring.range(start, n);
        match rr.second {
            None => ctx.try_get_words(target, self.slot_addr(rr.first.0), out),
            Some((s, l)) => {
                let a = (self.slot_addr(rr.first.0), rr.first.1 * self.task_words);
                let b = (self.slot_addr(s), l * self.task_words);
                ctx.try_get_words_gather(target, a, b, out)
            }
        }
    }

    /// Owner: read `n` records starting at absolute index `abs` from the
    /// local ring into `out` (free local reads, wrap-aware). Used to
    /// re-enqueue a block whose steal was poisoned or reclaimed.
    pub(crate) fn read_block_local(&self, ctx: &ShmemCtx, abs: u64, n: usize, out: &mut Vec<u64>) {
        out.clear();
        out.resize(n * self.task_words, 0);
        let rr = self.ring.range(self.ring.slot(abs), n);
        let first_words = rr.first.1 * self.task_words;
        ctx.local_read_words(self.slot_addr(rr.first.0), &mut out[..first_words]);
        if let Some((s, _)) = rr.second {
            ctx.local_read_words(self.slot_addr(s), &mut out[first_words..]);
        }
    }
}
