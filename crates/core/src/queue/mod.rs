//! Queue abstractions shared by the SDC baseline and SWS.

pub(crate) mod buffer;
pub mod sdc;
pub mod sws;

use sws_shmem::RetryPolicy;
use sws_task::TaskDescriptor;

use crate::steal_half::StealPolicy;
use crate::stealval::Layout;

/// Completion-slot sentinel: a thief that claimed a block but could not
/// copy it poisons the slot, telling the owner to re-enqueue the block
/// immediately instead of waiting out the reclaim grace period. Volumes
/// are bounded by the 19-bit itasks field, so the top bits are free.
pub const COMP_POISON: u64 = 1 << 63;

/// Completion-slot sentinel: the owner reclaimed an abandoned claim after
/// the grace period. A thief that later tries to complete the steal sees
/// this value and discards its copy — the block already ran at the owner.
pub const COMP_RECLAIMED: u64 = 1 << 62;

/// Completion-slot sentinel (SDC only): a thief has claimed the block and
/// is copying it. Carries the block volume in the low bits so the owner
/// can reclaim the block if the thief never finishes.
pub const COMP_CLAIMED: u64 = 1 << 61;

/// Mask extracting the block volume from a flagged completion word.
pub const COMP_VOL_MASK: u64 = COMP_CLAIMED - 1;

/// Panic with protocol context on a broken queue invariant. Centralising
/// the message beats scattered `expect("checked")` calls: every violation
/// names the protocol step that observed it.
#[cold]
#[inline(never)]
pub(crate) fn invariant_violation(msg: &str) -> ! {
    panic!("queue protocol invariant violated: {msg}");
}

/// Configuration common to both queue implementations.
#[derive(Copy, Clone, Debug)]
pub struct QueueConfig {
    /// Ring capacity in tasks. Must fit the stealval tail field
    /// (≤ 2¹⁹ for the epoch layout).
    pub capacity: usize,
    /// Fixed task record size in 64-bit words (e.g. 3 for the paper's
    /// 24-byte tasks, 24 for 192-byte tasks).
    pub task_words: usize,
    /// stealval layout: `Epochs` (Fig. 4, the paper's final design) or
    /// `ValidBit` (Fig. 3, the §4.1 initial design used as an ablation).
    pub layout: Layout,
    /// Steal-volume schedule (the paper's steal-half by default).
    pub policy: StealPolicy,
    /// Virtual ns charged per release/acquire for the owner's local
    /// bookkeeping (split update, completion-array reset).
    pub split_update_ns: u64,
    /// Retry policy for fallible thief-side operations when fault
    /// injection is active. Ignored in fault-free worlds.
    pub retry: RetryPolicy,
    /// How long the owner lets a claimed block sit without a completion
    /// before reclaiming it (fault mode only).
    pub reclaim_grace_ns: u64,
    /// Batch size for the thief's passive completion notifications. With
    /// `0` (the default) every completion is an eager `atomic_set_nbi` +
    /// quiet, exactly the paper's protocol. With `n > 0` up to `n`
    /// completion puts are staged and flushed together in one quiet —
    /// fewer line bounces on the victims' completion arrays when a thief
    /// lands several steals between flushes. Staged completions are
    /// always flushed before the thief's next steal attempt, at
    /// `progress`, and at `flush_completions`/`retire`/`park`, so owners
    /// observe every completion before the thief touches them again.
    pub comp_batch: usize,
    /// Test-only seeded protocol bug, used by the exploration
    /// scheduler's mutation self-test to prove the explorer can find,
    /// shrink, and replay a real ordering violation. Always `None` in
    /// production configurations.
    #[doc(hidden)]
    pub mutation: Option<Mutation>,
}

/// A deliberately planted protocol bug (see [`QueueConfig::mutation`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[doc(hidden)]
pub enum Mutation {
    /// SWS thief: issue the passive completion notification *before*
    /// copying the stolen payload (swap steps 2 and 3 of the fault-free
    /// steal). A preempted thief then lets the owner reconcile the
    /// epoch and overwrite the ring words mid-copy, so the thief lands
    /// stale or torn task records — a conservation violation.
    CompleteBeforeCopy,
}

impl QueueConfig {
    /// A queue of `capacity` tasks of `task_bytes` bytes each, using
    /// completion epochs.
    pub fn new(capacity: usize, task_bytes: usize) -> QueueConfig {
        QueueConfig {
            capacity,
            task_words: TaskDescriptor::words_for(task_bytes),
            layout: Layout::Epochs,
            policy: StealPolicy::Half,
            split_update_ns: 150,
            retry: RetryPolicy::default_thief(),
            reclaim_grace_ns: 200_000,
            comp_batch: 0,
            mutation: None,
        }
    }

    /// Batch passive completion notifications `n` at a time (`0` =
    /// eager, the default — see [`QueueConfig::comp_batch`]).
    #[must_use]
    pub fn with_comp_batch(mut self, n: usize) -> QueueConfig {
        self.comp_batch = n;
        self
    }

    /// Switch to the Fig. 3 single-epoch layout.
    #[must_use]
    pub fn with_layout(mut self, layout: Layout) -> QueueConfig {
        self.layout = layout;
        self
    }

    /// Select the steal-volume schedule.
    #[must_use]
    pub fn with_policy(mut self, policy: StealPolicy) -> QueueConfig {
        self.policy = policy;
        self
    }

    /// Override the thief retry policy used under fault injection.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> QueueConfig {
        self.retry = retry;
        self
    }

    /// Override the owner's claim-reclaim grace period (fault mode).
    #[must_use]
    pub fn with_reclaim_grace_ns(mut self, ns: u64) -> QueueConfig {
        self.reclaim_grace_ns = ns;
        self
    }

    /// Plant a seeded protocol bug (exploration self-test only).
    #[doc(hidden)]
    #[must_use]
    pub fn with_mutation(mut self, mutation: Mutation) -> QueueConfig {
        self.mutation = Some(mutation);
        self
    }

    /// Words of symmetric heap the task buffer needs.
    pub fn buffer_words(&self) -> usize {
        self.capacity * self.task_words
    }

    /// Validate against the stealval field widths.
    pub fn validate(&self) {
        assert!(self.capacity > 0, "queue capacity must be nonzero");
        assert!(self.task_words > 0, "task records must be at least a word");
        assert!(
            self.capacity <= self.layout.max_tail() as usize + 1,
            "capacity {} exceeds the {}-bit tail field",
            self.capacity,
            self.layout.tail_bits()
        );
        assert!(
            self.capacity <= self.layout.max_itasks() as usize,
            "capacity {} exceeds the itasks field",
            self.capacity
        );
        assert!(
            (self.capacity as u64) <= COMP_VOL_MASK,
            "capacity {} exceeds the completion-word volume field",
            self.capacity
        );
    }
}

/// Result of one steal attempt against a target queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StealOutcome {
    /// Claimed and copied `tasks` tasks into the local queue.
    Got {
        /// Number of tasks stolen.
        tasks: u64,
    },
    /// The target advertised no (remaining) work.
    Empty,
    /// The target's gate was closed (owner updating the split point);
    /// worth retrying soon.
    Closed,
    /// Fault mode: the steal failed before any block was claimed — the
    /// claim op kept getting dropped, timed out past the retry budget, or
    /// the target is down. Safe to retry against another victim.
    Failed {
        /// The target is marked down; the caller should quarantine it.
        target_down: bool,
    },
    /// Fault mode: a block *was* claimed but the steal could not finish
    /// (the copy failed, or the owner reclaimed the claim first). The
    /// block's tasks stay with — or return to — the owner, so the thief
    /// must not execute anything from it.
    Aborted {
        /// The target is marked down; the caller should quarantine it.
        target_down: bool,
    },
}

/// Owner-side event counters for one queue (local bookkeeping, not
/// communication — communication is counted by `sws-shmem`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Tasks enqueued locally (spawns + stolen arrivals).
    pub enqueued: u64,
    /// Tasks popped locally.
    pub popped: u64,
    /// Release operations performed.
    pub releases: u64,
    /// Acquire operations that moved shared work back to the local
    /// portion.
    pub acquires: u64,
    /// Acquire attempts that found no unclaimed shared work.
    pub acquire_misses: u64,
    /// Steal attempts this PE made against remote queues.
    pub steal_attempts: u64,
    /// Steal attempts that claimed and copied work.
    pub steals_won: u64,
    /// Tasks obtained by stealing.
    pub tasks_stolen: u64,
    /// Steal attempts aborted because the target was empty.
    pub steals_empty: u64,
    /// Steal attempts aborted because the target's gate was closed
    /// (SWS) or its lock stayed contended until the abort check (SDC).
    pub steals_closed: u64,
    /// Times the owner had to poll for epoch completion (SWS) or for
    /// in-flight steals to drain (Fig. 3 layout / SDC lock waits).
    pub owner_polls: u64,
    /// Tasks whose ring space has been reclaimed after steal completion.
    pub reclaimed: u64,
    /// Fault mode: individual op retries performed inside steals.
    pub steals_retried: u64,
    /// Fault mode: steals that gave up before claiming a block.
    pub steals_failed: u64,
    /// Fault mode: steals abandoned *after* claiming a block (the block
    /// returned to the owner via poison or grace-period reclaim).
    pub steals_aborted: u64,
    /// Fault mode, owner side: completion slots found poisoned by an
    /// aborting thief; their blocks were re-enqueued locally.
    pub completions_poisoned: u64,
    /// Fault mode, owner side: claims reclaimed after the grace period
    /// with no completion; their blocks were re-enqueued locally.
    pub claims_reclaimed: u64,
    /// Owner side: upper bound on successful steals peers can land
    /// against this queue, accrued as `policy.max_steals(k)` each time
    /// the owner exposes `k` unclaimed tasks (an SWS advertisement, an
    /// SDC release/re-expose). The rooted-tree steal-bound invariant
    /// checks Σ steals_won ≤ Σ steal_budget across the whole run.
    pub steal_budget: u64,
}

/// The owner/thief interface both queue implementations provide.
///
/// One instance lives on each PE; symmetric addressing means any instance
/// can steal from any peer's queue of the same shape.
pub trait StealQueue {
    /// Enqueue a locally spawned task. Returns `false` when the ring is
    /// full even after reclaiming completed steals (caller should execute
    /// the task inline — the standard Scioto fallback).
    fn enqueue(&mut self, task: &TaskDescriptor) -> bool;

    /// Pop the newest local task (LIFO — depth-first execution order).
    /// Returns `None` when the local portion is empty; the caller should
    /// then try [`StealQueue::acquire`] and, failing that, steal.
    fn pop_local(&mut self) -> Option<TaskDescriptor>;

    /// Tasks currently in the local portion.
    fn local_count(&self) -> u64;

    /// Owner's estimate of unclaimed tasks in the shared portion.
    fn shared_estimate(&mut self) -> u64;

    /// Move half the local tasks into the shared portion (paper: called
    /// when the shared portion is empty but local work remains). Returns
    /// `true` if tasks were exposed.
    fn release(&mut self) -> bool;

    /// Move unclaimed shared tasks back into the local portion (called
    /// when the local portion is empty). Returns `true` if tasks were
    /// recovered.
    fn acquire(&mut self) -> bool;

    /// Reclaim ring space for completed steals (the paper's periodic
    /// "progress" operation).
    fn progress(&mut self);

    /// Attempt to steal from `target`'s queue, enqueueing stolen tasks
    /// locally.
    fn steal_from(&mut self, target: usize) -> StealOutcome;

    /// Read-only check whether `target` appears to have stealable work —
    /// the damped probe of §4.3 (one atomic fetch, no claim).
    fn probe(&self, target: usize) -> bool;

    /// Owner-side event counters.
    fn stats(&self) -> &QueueStats;

    /// Flush any passive completion notifications (quiet).
    fn flush_completions(&mut self);

    /// Permanently stop advertising work and drain every in-flight steal:
    /// thieves either complete, poison their claim, or are reclaimed after
    /// the grace period. On return, all tasks still owned by this queue
    /// sit in the local portion (pop them before shutting down). Called by
    /// a crash-stopping worker *before* it marks itself down, so no claim
    /// is lost in flight.
    fn retire(&mut self);

    /// *Reversibly* stop advertising work: close the gate / hold the
    /// lock, drain every in-flight steal exactly as [`StealQueue::retire`]
    /// does, and leave the queue locked against thieves until
    /// [`StealQueue::unpark`]. Elastic PEs use this to leave the pool
    /// mid-run through the protocol's own locked-stealval path. The
    /// default implementation falls back to the one-way `retire`.
    fn park(&mut self) {
        self.retire();
    }

    /// Re-open a parked queue for stealing. Queues that only support the
    /// one-way `retire` ignore this (the default).
    fn unpark(&mut self) {}

    /// Total tasks currently resident in the ring — local *and* shared
    /// (claimed-but-unreclaimed space included). Admission control
    /// compares this against the ring capacity's high-water mark.
    fn occupancy(&self) -> u64 {
        self.local_count()
    }
}

impl StealQueue for Box<dyn StealQueue + '_> {
    fn enqueue(&mut self, task: &TaskDescriptor) -> bool {
        (**self).enqueue(task)
    }
    fn pop_local(&mut self) -> Option<TaskDescriptor> {
        (**self).pop_local()
    }
    fn local_count(&self) -> u64 {
        (**self).local_count()
    }
    fn shared_estimate(&mut self) -> u64 {
        (**self).shared_estimate()
    }
    fn release(&mut self) -> bool {
        (**self).release()
    }
    fn acquire(&mut self) -> bool {
        (**self).acquire()
    }
    fn progress(&mut self) {
        (**self).progress()
    }
    fn steal_from(&mut self, target: usize) -> StealOutcome {
        (**self).steal_from(target)
    }
    fn probe(&self, target: usize) -> bool {
        (**self).probe(target)
    }
    fn stats(&self) -> &QueueStats {
        (**self).stats()
    }
    fn flush_completions(&mut self) {
        (**self).flush_completions()
    }
    fn retire(&mut self) {
        (**self).retire()
    }
    fn park(&mut self) {
        (**self).park()
    }
    fn unpark(&mut self) {
        (**self).unpark()
    }
    fn occupancy(&self) -> u64 {
        (**self).occupancy()
    }
}
