//! The SWS queue (paper §4): structured-atomic work stealing.
//!
//! All metadata a thief needs lives in one 64-bit [`stealval`](crate::stealval)
//! in the symmetric heap. A steal is:
//!
//! 1. remote **atomic fetch-add** of [`ASTEAL_UNIT`] — discovers *and*
//!    claims the next block (volume and offset follow from the
//!    steal-half arithmetic alone);
//! 2. one blocking **get** of the claimed records (gathering across the
//!    ring wrap if needed);
//! 3. one **passive atomic put** of the block volume into the target's
//!    completion array — the owner reconciles asynchronously.
//!
//! Three communications, two blocking — half of SDC's six (Fig. 2).
//!
//! The owner keeps absolute indices `reclaimed ≤ … ≤ split ≤ head`:
//! `[split, head)` is the private local portion, everything below `split`
//! down to `reclaimed` is shared-side state (unclaimed, claimed-in-flight,
//! or finished-but-not-yet-reclaimed blocks). Each release/acquire closes
//! the current *completion epoch* and advertises a fresh one; per-epoch
//! completion arrays let the owner move the split point while steals are
//! still in flight (§4.2, Fig. 5). With the Fig. 3 `ValidBit` layout there
//! is a single epoch, so the owner polls until in-flight steals drain —
//! the §4.1 behaviour, kept as an ablation.
//!
//! # Fault mode
//!
//! When the world carries an active fault plan, the steal path switches
//! to fallible operations with bounded retry, and the passive completion
//! put becomes a compare-swap so the thief *learns* whether its claim is
//! still valid:
//!
//! * claim fetch-add dropped → retried; past the budget the steal returns
//!   [`StealOutcome::Failed`] (no claim was made — nothing to recover);
//! * block copy failed after a claim → the thief poisons the completion
//!   slot ([`COMP_POISON`]) and returns [`StealOutcome::Aborted`]; the
//!   owner re-enqueues the block from its own ring;
//! * completion CAS lost or never confirmed → the slot stays zero and the
//!   owner reclaims the claim ([`COMP_RECLAIMED`]) after a grace period;
//!   a thief arriving later sees the sentinel and discards its copy.
//!
//! Every recovery keeps exactly-once execution: a block either lands at
//! exactly one thief (CAS wrote its volume) or returns to the owner (slot
//! poisoned or reclaimed) — never both.

use std::collections::VecDeque;

use sws_shmem::fault::retry_op;
use sws_shmem::rng::SplitMix64;
use sws_shmem::{OpError, OpResult, RetryPolicy, ShmemCtx, SymAddr};
use sws_task::TaskDescriptor;

use crate::ordering::AtomicSite;
use crate::queue::buffer::TaskBuffer;
use crate::queue::{
    invariant_violation, QueueConfig, QueueStats, StealOutcome, StealQueue, COMP_POISON,
    COMP_RECLAIMED,
};
use crate::steal_half::StealPolicy;
use crate::stealval::{Gate, StealVal, ASTEAL_UNIT};

/// Owner bookkeeping for one advertisement (one use of a completion-array
/// slot set). Records retire strictly front-to-back so `reclaimed` only
/// ever advances over a contiguous finished prefix of the ring.
#[derive(Debug)]
struct EpochRec {
    /// Which completion-array slot set this advertisement uses.
    slot: usize,
    /// Absolute index of the advertisement's first task.
    tail: u64,
    /// Tasks advertised.
    itasks: u64,
    /// Steals claimed against it (live for the open record, fixed at
    /// close time otherwise).
    claimed_steals: u64,
    /// Leading steals confirmed finished via the completion array.
    finished_prefix: u64,
    /// Still the live advertisement?
    open: bool,
    /// Fault mode: when the owner first saw the head-of-line steal's
    /// completion slot still zero; starts the reclaim grace period.
    stuck_since: Option<u64>,
}

/// Run a fallible op under the queue's retry policy, charging backoff as
/// compute time and counting each retry. A free function so callers can
/// split-borrow queue fields around it.
fn retry_comm<T>(
    policy: &RetryPolicy,
    rng: &mut SplitMix64,
    stats: &mut QueueStats,
    ctx: &ShmemCtx,
    op: impl FnMut() -> OpResult<T>,
) -> OpResult<T> {
    retry_op(
        policy,
        rng,
        |ns| ctx.compute(ns),
        || stats.steals_retried += 1,
        op,
    )
}

fn is_down(e: &OpError) -> bool {
    matches!(e, OpError::TargetDown { .. })
}

/// One PE's SWS task queue. Constructed collectively; symmetric
/// addressing lets any instance steal from any peer afterwards.
pub struct SwsQueue<'a> {
    ctx: &'a ShmemCtx,
    cfg: QueueConfig,
    policy: StealPolicy,
    /// Completion-array slots per epoch (policy-dependent).
    slots_per_epoch: usize,
    sv_addr: SymAddr,
    comp_addr: SymAddr,
    buf: TaskBuffer,
    /// Next enqueue slot (absolute).
    head: u64,
    /// First local task (absolute); `[split, head)` is the local portion.
    split: u64,
    /// Everything below this (absolute) has been reclaimed.
    reclaimed: u64,
    /// Advertisement history, oldest first; the back entry is open iff an
    /// advertisement is live.
    epochs: VecDeque<EpochRec>,
    /// Slot sets referenced by records still in `epochs` (must not be
    /// handed to a new advertisement that posts completions).
    slot_busy: Vec<bool>,
    /// Gate permanently closed by [`StealQueue::retire`].
    retired: bool,
    /// Gate reversibly closed by [`StealQueue::park`] — the elastic-PE
    /// "queue locked" state; [`StealQueue::unpark`] re-opens it.
    parked: bool,
    /// Jitter source for retry backoff (fault mode).
    rng: SplitMix64,
    stats: QueueStats,
    scratch: Vec<u64>,
    /// Staged passive completion notifications (batched mode,
    /// `cfg.comp_batch > 0`): `(victim, slot address, volume)` tuples not
    /// yet issued. Always empty in eager mode.
    pending_comps: Vec<(usize, SymAddr, u64)>,
}

impl<'a> SwsQueue<'a> {
    /// Collectively construct one queue per PE (all PEs must call this
    /// with identical `cfg`).
    pub fn new(ctx: &'a ShmemCtx, cfg: QueueConfig) -> SwsQueue<'a> {
        cfg.validate();
        let n_slots = cfg.layout.n_epochs();
        let slots_per_epoch = cfg.policy.slot_budget();
        // Line-isolated placement (aligned heap layouts only): the
        // stealval is the single most contended word in the system —
        // every thief RMWs it — so it must never share a cache line with
        // the completion arrays (written by thieves, polled by the
        // owner) or the ring buffer (overwritten by the owner's
        // enqueues). Aligned allocation puts each on its own 128-byte
        // line; under `HeapLayout::Packed` these degrade to plain bumps
        // and the historical packed geometry.
        let sv_addr = ctx.alloc_words_aligned(1);
        let comp_addr = ctx.alloc_words_aligned(n_slots * slots_per_epoch);
        let buf_addr = ctx.alloc_words_aligned(cfg.buffer_words());
        // Advertise an open, empty epoch 0.
        ctx.proto_site(AtomicSite::SwsOwnerAdvertise.id());
        ctx.atomic_set(ctx.my_pe(), sv_addr, cfg.layout.encode(StealVal::empty()));
        ctx.barrier_all();

        let mut slot_busy = vec![false; n_slots];
        slot_busy[0] = true;
        let mut epochs = VecDeque::new();
        epochs.push_back(EpochRec {
            slot: 0,
            tail: 0,
            itasks: 0,
            claimed_steals: 0,
            finished_prefix: 0,
            open: true,
            stuck_since: None,
        });
        SwsQueue {
            ctx,
            cfg,
            policy: cfg.policy,
            slots_per_epoch,
            sv_addr,
            comp_addr,
            buf: TaskBuffer::new(buf_addr, cfg.capacity, cfg.task_words),
            head: 0,
            split: 0,
            reclaimed: 0,
            epochs,
            slot_busy,
            retired: false,
            parked: false,
            rng: SplitMix64::stream(0x57EA_F417, ctx.my_pe() as u64),
            stats: QueueStats::default(),
            scratch: Vec::new(),
            pending_comps: Vec::new(),
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Address of completion slot `steal` of completion-array set `slot`
    /// (valid on every PE — symmetric).
    #[inline]
    fn comp_slot(&self, slot: usize, steal: u64) -> SymAddr {
        debug_assert!((steal as usize) < self.slots_per_epoch);
        self.comp_addr
            .offset(slot * self.slots_per_epoch + steal as usize)
    }

    /// Ring slots currently in use (live tasks + claimed blocks whose
    /// space has not been reclaimed yet).
    #[inline]
    fn live_span(&self) -> u64 {
        self.head - self.reclaimed
    }

    /// Read the live stealval — a charged local atomic; the owner pays the
    /// NIC-loopback access just as on real hardware.
    fn read_sv(&self) -> StealVal {
        // ordering: SwsOwnerSvRead — catalog says Relaxed: the asteals
        // counter is monotonic per advertisement, so staleness only
        // under-reports and the caller retries (necessity-proven, see
        // ORDERINGS.md).
        self.ctx.proto_site(AtomicSite::SwsOwnerSvRead.id());
        let raw = self.ctx.atomic_fetch_ordered(
            self.ctx.my_pe(),
            self.sv_addr,
            AtomicSite::SwsOwnerSvRead.production().acquires(),
        );
        self.cfg.layout.decode(raw)
    }

    /// Clamp a raw asteals counter to the number of meaningful claims.
    fn clamp_claims(&self, itasks: u64, sv: &StealVal) -> u64 {
        (sv.asteals as u64).min(self.policy.max_steals(itasks))
    }

    /// Re-enqueue steal `s` of an advertisement (`tail`, `itasks`) from
    /// this PE's own ring into the local portion — the block's claim was
    /// poisoned or reclaimed, so its tasks run here instead.
    ///
    /// Must be called while `reclaimed` still sits at the block's start
    /// (records retire front-to-back, so that is always the case): the
    /// copy-out happens before any head-write can overwrite the slots.
    fn requeue_block(&mut self, tail: u64, itasks: u64, s: u64) {
        let vol = self.policy.volume(itasks, s);
        let offset = self.policy.claimed_before(itasks, s);
        let abs = tail + offset;
        debug_assert_eq!(abs, self.reclaimed, "requeue off the reclaim frontier");
        let mut words = Vec::new();
        self.buf
            .read_block_local(self.ctx, abs, vol as usize, &mut words);
        // ordering: SwsOwnerPayloadWrite (requeue)
        self.ctx.proto_site(AtomicSite::SwsOwnerPayloadWrite.id());
        self.buf
            .write_local_block(self.ctx, self.head, vol as usize, &words);
        self.head += vol;
        self.stats.enqueued += vol;
    }

    /// Retire finished advertisements (front-to-back) and advance
    /// `reclaimed` over the longest fully-finished prefix of steal blocks
    /// (§4.2: "all completion arrays are traversed to account for the
    /// longest sequence of fully completed steals"). In fault mode this is
    /// also where abandoned claims are recovered: a poisoned slot is
    /// re-enqueued immediately, a slot stuck at zero past the grace period
    /// is compare-swapped to [`COMP_RECLAIMED`] and re-enqueued.
    fn reclaim(&mut self) {
        let me = self.ctx.my_pe();
        let faults = self.ctx.faults_active();
        let grace = self.cfg.reclaim_grace_ns;
        loop {
            let Some((open, slot, tail, itasks, mut finished, claimed_fixed, mut stuck)) = self
                .epochs
                .front()
                .map(|f| {
                    (
                        f.open,
                        f.slot,
                        f.tail,
                        f.itasks,
                        f.finished_prefix,
                        f.claimed_steals,
                        f.stuck_since,
                    )
                })
            else {
                return;
            };
            let n_claimed = if open {
                let sv = self.read_sv();
                self.clamp_claims(itasks, &sv)
            } else {
                claimed_fixed
            };

            while finished < n_claimed {
                let comp = self.comp_slot(slot, finished);
                let vol = self.policy.volume(itasks, finished);
                // ordering: SwsOwnerReclaimRead
                self.ctx.proto_site(AtomicSite::SwsOwnerReclaimRead.id());
                let mut v = self.ctx.atomic_fetch(me, comp);
                if v == 0 && faults {
                    // Head-of-line claim has no completion yet: start (or
                    // check) the grace clock, then reclaim it.
                    let now = self.ctx.now_ns();
                    match stuck {
                        None => {
                            stuck = Some(now);
                            break;
                        }
                        Some(t0) if now.saturating_sub(t0) < grace => break,
                        Some(_) => {
                            // ordering: SwsOwnerReclaimRead (reclaim CAS)
                            self.ctx.proto_site(AtomicSite::SwsOwnerReclaimRead.id());
                            let prev = self.ctx.atomic_compare_swap(me, comp, 0, COMP_RECLAIMED);
                            if prev == 0 {
                                // We won the race against the thief: the
                                // block is ours again.
                                self.requeue_block(tail, itasks, finished);
                                self.stats.claims_reclaimed += 1;
                                finished += 1;
                                self.reclaimed += vol;
                                self.stats.reclaimed += vol;
                                stuck = None;
                                continue;
                            }
                            // The thief completed (or poisoned) just in
                            // time; handle the value it wrote.
                            v = prev;
                        }
                    }
                }
                if v == 0 {
                    break; // steal `finished` still in flight
                }
                if faults && v == COMP_POISON {
                    self.requeue_block(tail, itasks, finished);
                    self.stats.completions_poisoned += 1;
                } else {
                    debug_assert_eq!(v, vol, "completion volume mismatch");
                }
                finished += 1;
                self.reclaimed += vol;
                self.stats.reclaimed += vol;
                stuck = None;
            }

            let done = !open && finished == n_claimed;
            match self.epochs.front_mut() {
                Some(f) => {
                    f.finished_prefix = finished;
                    f.stuck_since = stuck;
                }
                None => invariant_violation("reclaim lost the front advertisement record"),
            }
            if done {
                self.slot_busy[slot] = false;
                self.epochs.pop_front();
                continue;
            }
            return;
        }
    }

    /// Close the open advertisement given an authoritative stealval;
    /// returns its number of unclaimed tasks. The record stays queued
    /// (its slot stays busy) until `reclaim` retires it in order.
    fn close_open(&mut self, sv: &StealVal) -> u64 {
        let policy = self.policy;
        let Some(rec) = self.epochs.back_mut().filter(|r| r.open) else {
            invariant_violation("close_open called without an open advertisement");
        };
        let claimed = (sv.asteals as u64).min(policy.max_steals(rec.itasks));
        rec.claimed_steals = claimed;
        rec.open = false;
        let unclaimed = rec.itasks - policy.claimed_before(rec.itasks, claimed);
        self.reclaim();
        unclaimed
    }

    /// Pick a completion-array slot set for a new advertisement, polling
    /// until one frees up. With a single epoch (the Fig. 3 layout) this
    /// is exactly §4.1's wait-for-in-flight-steals-to-drain.
    fn wait_for_free_slot(&mut self) -> usize {
        loop {
            if let Some(s) = (0..self.slot_busy.len()).find(|&s| !self.slot_busy[s]) {
                return s;
            }
            self.stats.owner_polls += 1;
            self.reclaim();
            // reclaim() issues charged local atomics, so virtual time
            // advances and in-flight thieves can complete; the extra
            // compute charge guards against a zero-cost no-op poll.
            self.ctx.compute(100);
            self.ctx.idle_hint();
        }
    }

    /// Publish a new advertisement of `itasks` tasks starting at absolute
    /// index `tail`, under completion-slot set `slot`.
    fn advertise(&mut self, slot: usize, tail: u64, itasks: u64) {
        // Zero the slots this advertisement can receive completions in,
        // *before* thieves can see it.
        for s in 0..self.policy.max_steals(itasks) {
            // ordering: SwsOwnerSlotZero
            self.ctx.proto_site(AtomicSite::SwsOwnerSlotZero.id());
            self.ctx
                .atomic_set(self.ctx.my_pe(), self.comp_slot(slot, s), 0);
        }
        let sv = StealVal {
            asteals: 0,
            gate: Gate::Open { epoch: slot as u8 },
            itasks: itasks as u32,
            tail: self.buf.ring().slot(tail) as u32,
        };
        // ordering: SwsOwnerAdvertise
        self.ctx.proto_site(AtomicSite::SwsOwnerAdvertise.id());
        self.ctx
            .atomic_set(self.ctx.my_pe(), self.sv_addr, self.cfg.layout.encode(sv));
        // Rooted-tree steal bound: this advertisement admits at most
        // max_steals(itasks) successful claims; accrue the budget the
        // steal-bound invariant checks Σ steals_won against.
        self.stats.steal_budget += self.policy.max_steals(itasks);
        self.slot_busy[slot] = true;
        self.epochs.push_back(EpochRec {
            slot,
            tail,
            itasks,
            claimed_steals: 0,
            finished_prefix: 0,
            open: true,
            stuck_since: None,
        });
    }

    /// Close the gate (locked stealval) and drain every in-flight steal —
    /// the shared body of [`StealQueue::retire`] and [`StealQueue::park`].
    /// On return all tasks still owned sit in the local portion and no
    /// epoch record remains.
    fn close_gate_and_drain(&mut self) {
        // Batched mode: our own staged completions must reach their
        // victims before we stop participating — their owners may be
        // waiting on them to reclaim ring space.
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
            self.ctx.quiet();
        }
        // Close the gate. Thieves racing the swap either claimed before it
        // (drained below) or see Closed / TargetDown.
        let closed = self.cfg.layout.encode(StealVal {
            asteals: 0,
            gate: Gate::Closed,
            itasks: 0,
            tail: 0,
        });
        // ordering: SwsOwnerAcquireSwap (retire/park closes the gate)
        self.ctx.proto_site(AtomicSite::SwsOwnerAcquireSwap.id());
        let raw = self.ctx.atomic_swap(self.ctx.my_pe(), self.sv_addr, closed);
        let sv = self.cfg.layout.decode(raw);
        if matches!(sv.gate, Gate::Open { .. }) && self.epochs.back().is_some_and(|e| e.open) {
            // Recover the unclaimed tail of the open advertisement into
            // the local portion; its claimed prefix drains below.
            let unclaimed = self.close_open(&sv);
            self.split -= unclaimed;
        }
        // Drain every outstanding claim: thieves complete, poison, or are
        // reclaimed after the grace period — the loop's compute charges
        // keep virtual time moving so all three can happen.
        while !self.epochs.is_empty() {
            self.reclaim();
            if self.epochs.is_empty() {
                break;
            }
            self.stats.owner_polls += 1;
            self.ctx.compute(200);
            self.ctx.idle_hint();
        }
    }

    /// Issue every staged passive completion notification (batched mode).
    /// The puts stay non-blocking; callers that need them settled follow
    /// with a quiet ([`StealQueue::flush_completions`] does both).
    fn flush_pending_comps(&mut self) {
        for (target, comp, vol) in self.pending_comps.drain(..) {
            // ordering: SwsThiefComplete
            self.ctx.proto_site(AtomicSite::SwsThiefComplete.id());
            self.ctx.atomic_set_nbi(target, comp, vol);
        }
    }

    /// Fault-mode steal: fallible ops with bounded retry, poison on a
    /// failed copy, CAS-confirmed completion. See the module docs for the
    /// recovery protocol.
    fn steal_from_faulty(&mut self, target: usize) -> StealOutcome {
        self.stats.steal_attempts += 1;
        let ctx = self.ctx;
        let policy = self.cfg.retry;
        let sv_addr = self.sv_addr;

        // 1. Claim. A dropped fetch-add has no memory effect, so retrying
        // it cannot double-claim.
        let claim = retry_comm(&policy, &mut self.rng, &mut self.stats, ctx, || {
            // ordering: SwsThiefClaim
            ctx.proto_site(AtomicSite::SwsThiefClaim.id());
            ctx.try_atomic_fetch_add(target, sv_addr, ASTEAL_UNIT)
        });
        let raw = match claim {
            Ok(raw) => raw,
            Err(e) => {
                self.stats.steals_failed += 1;
                return StealOutcome::Failed {
                    target_down: is_down(&e),
                };
            }
        };
        let sv = self.cfg.layout.decode(raw);
        let epoch = match sv.gate {
            Gate::Closed => {
                self.stats.steals_closed += 1;
                return StealOutcome::Closed;
            }
            Gate::Open { epoch } => epoch,
        };
        let itasks = sv.itasks as u64;
        let a = sv.asteals as u64;
        if a >= self.policy.max_steals(itasks) {
            self.stats.steals_empty += 1;
            return StealOutcome::Empty;
        }
        let vol = self.policy.volume(itasks, a);
        let offset = self.policy.claimed_before(itasks, a);
        let comp = self.comp_slot(epoch as usize, a);

        // Make room locally before landing the block.
        while self.live_span() + vol > self.cfg.capacity as u64 {
            self.stats.owner_polls += 1;
            self.reclaim();
            self.ctx.compute(100);
            self.ctx.idle_hint();
        }

        // 2. Copy the claimed block.
        let start = self.buf.ring().slot(sv.tail as u64 + offset);
        let buf = self.buf;
        let mut scratch = std::mem::take(&mut self.scratch);
        let got = retry_comm(&policy, &mut self.rng, &mut self.stats, ctx, || {
            // ordering: SwsThiefPayloadRead
            ctx.proto_site(AtomicSite::SwsThiefPayloadRead.id());
            buf.try_steal_copy(ctx, target, start, vol as usize, &mut scratch)
        });
        if let Err(e) = got {
            // We hold a claim we cannot fill: poison the completion slot
            // so the owner re-enqueues the block promptly. If even the
            // poison is lost, the owner's grace-period reclaim recovers
            // the block — either way it runs exactly once, at the owner.
            let _ = retry_comm(&policy, &mut self.rng, &mut self.stats, ctx, || {
                // ordering: SwsThiefComplete (poison CAS)
                ctx.proto_site(AtomicSite::SwsThiefComplete.id());
                ctx.try_atomic_compare_swap(target, comp, 0, COMP_POISON)
            });
            self.scratch = scratch;
            self.stats.steals_aborted += 1;
            return StealOutcome::Aborted {
                target_down: is_down(&e),
            };
        }

        // 3. Completion — a CAS instead of the passive put, *before* the
        // block lands locally: only a confirmed claim may execute.
        let fin = retry_comm(&policy, &mut self.rng, &mut self.stats, ctx, || {
            // ordering: SwsThiefComplete (confirmed-claim CAS)
            ctx.proto_site(AtomicSite::SwsThiefComplete.id());
            ctx.try_atomic_compare_swap(target, comp, 0, vol)
        });
        match fin {
            Ok(0) => {
                // ordering: SwsOwnerPayloadWrite (landing a stolen block)
                ctx.proto_site(AtomicSite::SwsOwnerPayloadWrite.id());
                self.buf
                    .write_local_block(ctx, self.head, vol as usize, &scratch);
                self.head += vol;
                self.scratch = scratch;
                self.stats.steals_won += 1;
                self.stats.tasks_stolen += vol;
                self.stats.enqueued += vol;
                StealOutcome::Got { tasks: vol }
            }
            Ok(prev) => {
                // The owner reclaimed the claim during the copy; the block
                // already returned to its ring. Discard our copy.
                debug_assert_eq!(prev, COMP_RECLAIMED, "unexpected completion-slot value");
                self.scratch = scratch;
                self.stats.steals_aborted += 1;
                StealOutcome::Aborted { target_down: false }
            }
            Err(e) => {
                // Could not confirm: leave the slot for the owner's grace
                // reclaim and discard the copy — never run unconfirmed
                // tasks.
                self.scratch = scratch;
                self.stats.steals_aborted += 1;
                StealOutcome::Aborted {
                    target_down: is_down(&e),
                }
            }
        }
    }
}

impl StealQueue for SwsQueue<'_> {
    fn enqueue(&mut self, task: &TaskDescriptor) -> bool {
        if self.live_span() >= self.cfg.capacity as u64 {
            self.progress();
            if self.live_span() >= self.cfg.capacity as u64 {
                return false;
            }
        }
        // ordering: SwsOwnerPayloadWrite
        self.ctx.proto_site(AtomicSite::SwsOwnerPayloadWrite.id());
        self.buf.write_local(self.ctx, self.head, task);
        self.head += 1;
        self.stats.enqueued += 1;
        true
    }

    fn pop_local(&mut self) -> Option<TaskDescriptor> {
        if self.split == self.head {
            return None;
        }
        self.head -= 1;
        self.stats.popped += 1;
        Some(self.buf.read_local(self.ctx, self.head))
    }

    fn local_count(&self) -> u64 {
        self.head - self.split
    }

    fn shared_estimate(&mut self) -> u64 {
        let Some(rec) = self.epochs.back().filter(|e| e.open) else {
            return 0;
        };
        let itasks = rec.itasks;
        let sv = self.read_sv();
        let claimed = (sv.asteals as u64).min(self.policy.max_steals(itasks));
        itasks - self.policy.claimed_before(itasks, claimed)
    }

    fn release(&mut self) -> bool {
        if self.retired || self.parked {
            return false;
        }
        let nlocal = self.local_count();
        if nlocal == 0 {
            return false;
        }
        // Release only when the shared portion is fully claimed — that
        // precondition is what makes the lock-free stealval reset safe
        // (a racing thief of the stale advertisement gets volume 0).
        if let Some(itasks) = self.epochs.back().filter(|e| e.open).map(|r| r.itasks) {
            let sv = self.read_sv();
            let claimed = self.clamp_claims(itasks, &sv);
            if self.policy.claimed_before(itasks, claimed) < itasks {
                return false; // unclaimed shared work remains
            }
            self.close_open(&sv);
        }
        // Expose the older half of the local portion, capped so the
        // advertisement's steal count fits its completion-slot set.
        let k = (nlocal - nlocal / 2)
            .min(self.policy.max_advert(self.cfg.layout.max_itasks() as u64));
        let slot = self.wait_for_free_slot();
        let tail = self.split;
        self.split += k;
        self.advertise(slot, tail, k);
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.releases += 1;
        true
    }

    fn acquire(&mut self) -> bool {
        debug_assert_eq!(
            self.split, self.head,
            "acquire requires an empty local portion"
        );
        let Some((rec_tail, rec_itasks, rec_slot)) = self
            .epochs
            .back()
            .filter(|e| e.open)
            .map(|r| (r.tail, r.itasks, r.slot))
        else {
            self.stats.acquire_misses += 1;
            return false;
        };
        // Disable steals: swap in a closed gate; the returned word is the
        // authoritative claim count ("upon starting an acquire operation,
        // stealing is temporarily disabled", §4.1).
        let closed = self.cfg.layout.encode(StealVal {
            asteals: 0,
            gate: Gate::Closed,
            itasks: 0,
            tail: 0,
        });
        // ordering: SwsOwnerAcquireSwap (acquire closes the gate)
        self.ctx.proto_site(AtomicSite::SwsOwnerAcquireSwap.id());
        let raw = self.ctx.atomic_swap(self.ctx.my_pe(), self.sv_addr, closed);
        let sv = self.cfg.layout.decode(raw);
        debug_assert!(
            matches!(sv.gate, Gate::Open { .. }),
            "only the owner closes the gate"
        );

        let unclaimed = self.close_open(&sv);
        let claimed_vol = rec_itasks - unclaimed;

        if unclaimed == 0 {
            // Nothing to recover; reopen an empty advertisement so thieves
            // see "empty" rather than "locked". An empty advertisement
            // never receives completions, so reusing the same slot set is
            // safe even while its previous use is still draining.
            self.advertise(rec_slot, self.split, 0);
            self.stats.acquire_misses += 1;
            return false;
        }

        // Take the newer half of the unclaimed region back into the local
        // portion; re-advertise the rest under a fresh epoch (Fig. 5),
        // capped to the policy's advertisement limit.
        let cap = self.policy.max_advert(self.cfg.layout.max_itasks() as u64);
        let keep = (unclaimed / 2).min(cap);
        let take = unclaimed - keep;
        self.split -= take;
        let new_tail = rec_tail + claimed_vol;
        let slot = if keep == 0 {
            rec_slot // empty advertisement: slot reuse is safe (above)
        } else {
            self.wait_for_free_slot()
        };
        self.advertise(slot, new_tail, keep);
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.acquires += 1;
        true
    }

    fn progress(&mut self) {
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
        }
        self.reclaim();
    }

    fn steal_from(&mut self, target: usize) -> StealOutcome {
        debug_assert_ne!(target, self.ctx.my_pe(), "stealing from self");
        if self.ctx.faults_active() {
            return self.steal_from_faulty(target);
        }
        self.stats.steal_attempts += 1;

        // 1. One atomic fetch-add: discover AND claim.
        // ordering: SwsThiefClaim
        self.ctx.proto_site(AtomicSite::SwsThiefClaim.id());
        let raw = self.ctx.atomic_fetch_add(target, self.sv_addr, ASTEAL_UNIT);
        let sv = self.cfg.layout.decode(raw);
        let epoch = match sv.gate {
            Gate::Closed => {
                self.stats.steals_closed += 1;
                return StealOutcome::Closed;
            }
            Gate::Open { epoch } => epoch,
        };
        let itasks = sv.itasks as u64;
        let a = sv.asteals as u64;
        if a >= self.policy.max_steals(itasks) {
            self.stats.steals_empty += 1;
            return StealOutcome::Empty;
        }
        let vol = self.policy.volume(itasks, a);
        let offset = self.policy.claimed_before(itasks, a);

        // Make room locally before landing the block (our own previous
        // advertisements may still hold unreclaimed ring space).
        while self.live_span() + vol > self.cfg.capacity as u64 {
            self.stats.owner_polls += 1;
            self.reclaim();
            self.ctx.compute(100);
            self.ctx.idle_hint();
        }

        // 2. One get (gathered across the ring wrap if needed).
        let start = self.buf.ring().slot(sv.tail as u64 + offset);
        let mut scratch = std::mem::take(&mut self.scratch);
        if self.cfg.mutation == Some(crate::queue::Mutation::CompleteBeforeCopy) {
            // Seeded bug (exploration self-test): signal completion
            // before the payload copy, licensing the owner to overwrite
            // the ring words mid-steal.
            // ordering: SwsThiefComplete
            self.ctx.proto_site(AtomicSite::SwsThiefComplete.id());
            self.ctx
                .atomic_set_nbi(target, self.comp_slot(epoch as usize, a), vol);
            // ordering: SwsThiefPayloadRead
            self.ctx.proto_site(AtomicSite::SwsThiefPayloadRead.id());
            self.buf
                .steal_copy(self.ctx, target, start, vol as usize, &mut scratch);
        } else {
            // ordering: SwsThiefPayloadRead
            self.ctx.proto_site(AtomicSite::SwsThiefPayloadRead.id());
            self.buf
                .steal_copy(self.ctx, target, start, vol as usize, &mut scratch);

            // 3. Passive completion notification; the owner reconciles
            // later. In batched mode the put is staged so several steals'
            // notifications coalesce into one flush — fewer bounces of
            // the victims' completion-array lines.
            let comp = self.comp_slot(epoch as usize, a);
            if self.cfg.comp_batch > 0 {
                self.pending_comps.push((target, comp, vol));
                if self.pending_comps.len() >= self.cfg.comp_batch {
                    self.flush_pending_comps();
                }
            } else {
                // ordering: SwsThiefComplete
                self.ctx.proto_site(AtomicSite::SwsThiefComplete.id());
                self.ctx.atomic_set_nbi(target, comp, vol);
            }
        }

        // Land the block in our local portion.
        // ordering: SwsOwnerPayloadWrite (landing a stolen block)
        self.ctx.proto_site(AtomicSite::SwsOwnerPayloadWrite.id());
        self.buf
            .write_local_block(self.ctx, self.head, vol as usize, &scratch);
        self.head += vol;
        self.scratch = scratch;

        self.stats.steals_won += 1;
        self.stats.tasks_stolen += vol;
        self.stats.enqueued += vol;
        StealOutcome::Got { tasks: vol }
    }

    fn probe(&self, target: usize) -> bool {
        // ordering: SwsThiefProbe
        self.ctx.proto_site(AtomicSite::SwsThiefProbe.id());
        let raw = if self.ctx.faults_active() {
            match self.ctx.try_atomic_fetch(target, self.sv_addr) {
                Ok(raw) => raw,
                Err(_) => return false, // unreachable target: nothing to steal here
            }
        } else {
            self.ctx.atomic_fetch(target, self.sv_addr)
        };
        let sv = self.cfg.layout.decode(raw);
        match sv.gate {
            Gate::Closed => true, // owner mid-update: work may appear
            Gate::Open { .. } => {
                (sv.asteals as u64) < self.policy.max_steals(sv.itasks as u64)
            }
        }
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn flush_completions(&mut self) {
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
        }
        self.ctx.quiet();
    }

    fn retire(&mut self) {
        if self.retired {
            return;
        }
        self.retired = true;
        if self.parked {
            return; // gate already closed and every claim drained
        }
        self.close_gate_and_drain();
    }

    fn park(&mut self) {
        if self.parked || self.retired {
            return;
        }
        self.parked = true;
        self.close_gate_and_drain();
    }

    fn unpark(&mut self) {
        if !self.parked || self.retired {
            return;
        }
        self.parked = false;
        // Every epoch drained at park time, so a slot set is free; publish
        // an open, empty advertisement so thieves see "empty" again
        // instead of "locked".
        debug_assert!(self.epochs.is_empty(), "parked queue retained epochs");
        let slot = self.wait_for_free_slot();
        self.advertise(slot, self.split, 0);
    }

    fn occupancy(&self) -> u64 {
        self.live_span()
    }
}
