//! The baseline SDC queue (paper §3): Scioto's "Split queue, Deferred
//! copy, Aborting steals", ported to one-sided operations.
//!
//! Heap layout per PE: a spinlock word, the published `tail` and `split`
//! indices (absolute u64 counters — SDC has no bit-packing constraints),
//! a completion ring (one word per task slot, keyed by a stolen block's
//! starting slot), and the task buffer.
//!
//! A steal performs the six communications of Fig. 2:
//!
//! 1. acquire the remote spinlock (atomic compare-swap; while contended,
//!    the thief polls the metadata and *aborts* if the queue drained —
//!    the "aborting steals" optimization);
//! 2. fetch `tail` and `split` (one 16-byte get);
//! 3. publish the new `tail` (put);
//! 4. release the lock (atomic);
//! 5. copy the stolen records (get, gathered across the ring wrap);
//! 6. signal completion (passive atomic put — the "deferred copy"),
//!    letting the owner reclaim ring space lazily in `progress`.
//!
//! Five of the six block the thief; only the completion signal is
//! passive. Owner-side `release` needs no lock (it only grows `split`
//! while the shared portion is empty); `acquire` must take the lock
//! because thieves race on `tail`/`split` consistency.
//!
//! # Fault mode
//!
//! Faults interact with SDC's lock in a way SWS never has to deal with: a
//! thief that claimed a block (published `tail`) and then vanishes leaves
//! no trace in the baseline protocol — the owner would wait on the
//! completion slot forever. Under an active fault plan the thief therefore
//! writes a [`COMP_CLAIMED`]-tagged marker into the completion slot
//! *before* publishing the new tail, converting every claim into owner-
//! visible state:
//!
//! * copy failed → the thief flips the marker to [`COMP_POISON`]`|vol`;
//!   the owner re-enqueues the block;
//! * thief stalls or dies mid-copy → the marker outlives the grace period
//!   and the owner compare-swaps it to zero, reclaiming the block; the
//!   thief's eventual finalize CAS fails and it discards its copy;
//! * normal completion → finalize CAS replaces the marker with the plain
//!   volume, exactly the baseline's deferred signal.
//!
//! Operations *inside* the critical section follow a different rule: once
//! the lock is held, cleanup ops (unlock, marker rollback) are retried
//! until they succeed or the target is down — a thief can always afford
//! the retries, and abandoning a held lock would wedge the whole victim.
//! This is sound under the repo's fault model: crash-stop is cooperative
//! (polled between scheduler iterations), so a thief never dies while
//! holding a remote lock.

use sws_shmem::fault::retry_op;
use sws_shmem::rng::SplitMix64;
use sws_shmem::{OpError, OpResult, ShmemCtx, SymAddr};
use sws_task::TaskDescriptor;

use crate::ordering::AtomicSite;
use crate::queue::buffer::TaskBuffer;
use crate::queue::{
    QueueConfig, QueueStats, StealOutcome, StealQueue, COMP_CLAIMED, COMP_POISON, COMP_VOL_MASK,
};

/// Word offsets of the SDC metadata block.
const LOCK: usize = 0;
const TAIL: usize = 1;
const SPLIT: usize = 2;
const META_WORDS: usize = 3;

fn is_down(e: &OpError) -> bool {
    matches!(e, OpError::TargetDown { .. })
}

/// Virtual ns charged per retry of a must-complete cleanup op.
const INSIST_BACKOFF_NS: u64 = 2_000;

/// Retry a cleanup op until it succeeds or the target goes down. Used
/// only for ops that release resources (unlock, marker rollback): they
/// must not be abandoned on a transient fault, and if the target is down
/// the resource died with it.
fn insist(ctx: &ShmemCtx, mut op: impl FnMut() -> OpResult<()>) {
    loop {
        match op() {
            Ok(()) => return,
            Err(e) if is_down(&e) => return,
            Err(_) => ctx.compute(INSIST_BACKOFF_NS),
        }
    }
}

/// One PE's SDC task queue.
pub struct SdcQueue<'a> {
    ctx: &'a ShmemCtx,
    cfg: QueueConfig,
    meta: SymAddr,
    comp: SymAddr,
    buf: TaskBuffer,
    /// Next enqueue slot (absolute).
    head: u64,
    /// First local task (absolute, owner's mirror of the published split).
    split: u64,
    /// Everything below this (absolute) has been reclaimed.
    reclaimed: u64,
    /// Fault mode: grace tracking for the claim at the reclaim frontier —
    /// `(frontier_abs, first_seen_ns)`.
    stuck: Option<(u64, u64)>,
    /// Queue permanently closed by [`StealQueue::retire`].
    retired: bool,
    /// Queue reversibly closed by [`StealQueue::park`] — the owner holds
    /// its own lock until [`StealQueue::unpark`] releases it.
    parked: bool,
    /// Jitter source for retry backoff (fault mode).
    rng: SplitMix64,
    stats: QueueStats,
    scratch: Vec<u64>,
    /// Staged deferred completion signals (batched mode,
    /// `cfg.comp_batch > 0`): `(victim, slot address, volume)` tuples not
    /// yet issued. Always empty in eager mode.
    pending_comps: Vec<(usize, SymAddr, u64)>,
}

impl<'a> SdcQueue<'a> {
    /// Collectively construct one queue per PE (identical `cfg` everywhere).
    pub fn new(ctx: &'a ShmemCtx, cfg: QueueConfig) -> SdcQueue<'a> {
        cfg.validate();
        // Line-isolated placement (aligned heap layouts only): the meta
        // block (lock/tail/split — CASed by every thief) must not share
        // a cache line with the completion ring (written by thieves,
        // chain-followed by the owner) or the task buffer. Under
        // `HeapLayout::Packed` these degrade to plain bumps.
        let meta = ctx.alloc_words_aligned(META_WORDS);
        let comp = ctx.alloc_words_aligned(cfg.capacity);
        let buf_addr = ctx.alloc_words_aligned(cfg.buffer_words());
        // lock = 0, tail = 0, split = 0 — the heap is zeroed, but publish
        // explicitly for clarity.
        ctx.local_write_words(meta, &[0, 0, 0]);
        ctx.barrier_all();
        SdcQueue {
            ctx,
            cfg,
            meta,
            comp,
            buf: TaskBuffer::new(buf_addr, cfg.capacity, cfg.task_words),
            head: 0,
            split: 0,
            reclaimed: 0,
            stuck: None,
            retired: false,
            parked: false,
            rng: SplitMix64::stream(0x5DC0_F417, ctx.my_pe() as u64),
            stats: QueueStats::default(),
            scratch: Vec::new(),
            pending_comps: Vec::new(),
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    #[inline]
    fn live_span(&self) -> u64 {
        self.head - self.reclaimed
    }

    #[inline]
    fn lock_addr(&self) -> SymAddr {
        self.meta.offset(LOCK)
    }

    #[inline]
    fn tail_addr(&self) -> SymAddr {
        self.meta.offset(TAIL)
    }

    #[inline]
    fn split_addr(&self) -> SymAddr {
        self.meta.offset(SPLIT)
    }

    /// Completion-ring slot for a stolen block starting at absolute
    /// index `tail`.
    #[inline]
    fn comp_slot(&self, tail: u64) -> SymAddr {
        self.comp.offset(self.buf.ring().slot(tail))
    }

    /// Owner: read the published tail (thieves advance it remotely).
    fn read_tail(&self) -> u64 {
        // ordering: SdcOwnerTailRead
        self.ctx.proto_site(AtomicSite::SdcOwnerTailRead.id());
        self.ctx.atomic_fetch(self.ctx.my_pe(), self.tail_addr())
    }

    /// Owner: spin on our own queue lock (needed by `acquire`; thieves
    /// hold it during their metadata update).
    fn lock_own(&mut self) {
        let me = self.ctx.my_pe();
        loop {
            // ordering: SdcLockCas (owner self-lock)
            self.ctx.proto_site(AtomicSite::SdcLockCas.id());
            if self.ctx.atomic_compare_swap(me, self.lock_addr(), 0, 1) == 0 {
                return;
            }
            self.stats.owner_polls += 1;
            self.ctx.idle_hint();
        }
    }

    fn unlock_own(&self) {
        // ordering: SdcUnlock
        self.ctx.proto_site(AtomicSite::SdcUnlock.id());
        self.ctx.atomic_set(self.ctx.my_pe(), self.lock_addr(), 0);
    }

    /// Issue every staged completion signal (batched mode). Victim owners
    /// reclaim lazily off these slots, so deferral is pure backpressure —
    /// a ring slot cannot be re-claimed until its completion lands and is
    /// reclaimed, which bounds staleness by the victim's capacity.
    fn flush_pending_comps(&mut self) {
        for (target, comp, vol) in self.pending_comps.drain(..) {
            // ordering: SdcComplete
            self.ctx.proto_site(AtomicSite::SdcComplete.id());
            self.ctx.atomic_set_nbi(target, comp, vol);
        }
    }

    /// Take our own lock (and keep it), pull the unclaimed shared region
    /// back into the local portion, and drain every published claim — the
    /// shared body of [`StealQueue::retire`] and [`StealQueue::park`].
    /// Thieves contending on the held lock abort once they see
    /// `tail >= split`.
    fn lock_and_drain(&mut self) {
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
            self.ctx.quiet();
        }
        self.lock_own();
        let tail = self.read_tail();
        if tail < self.split {
            self.split = tail;
            // ordering: SdcSplitPublish
            self.ctx.proto_site(AtomicSite::SdcSplitPublish.id());
            self.ctx
                .atomic_set(self.ctx.my_pe(), self.split_addr(), self.split);
        }
        // Drain every published claim below the final tail: thieves
        // finalize, poison, or get reclaimed after the grace period.
        while self.reclaimed < tail {
            self.progress();
            if self.reclaimed >= tail {
                break;
            }
            self.stats.owner_polls += 1;
            self.ctx.compute(200);
            self.ctx.idle_hint();
        }
    }

    /// Re-enqueue the block `[abs, abs + vol)` from this PE's own ring
    /// into the local portion — its claim was poisoned or reclaimed.
    /// Called with `abs == self.reclaimed`, so the copy-out reads the
    /// slots before any head-write can overwrite them.
    fn requeue_block(&mut self, abs: u64, vol: u64) {
        debug_assert_eq!(abs, self.reclaimed, "requeue off the reclaim frontier");
        let mut words = Vec::new();
        self.buf
            .read_block_local(self.ctx, abs, vol as usize, &mut words);
        // ordering: SdcPayloadWrite (requeue)
        self.ctx.proto_site(AtomicSite::SdcPayloadWrite.id());
        self.buf
            .write_local_block(self.ctx, self.head, vol as usize, &words);
        self.head += vol;
        self.stats.enqueued += vol;
    }

    /// Fault-mode reclaim walk: like the baseline chain-follow, but
    /// flagged completion words carry recovery state. Stops at the
    /// published tail — everything at or above it is unclaimed.
    fn progress_faulty(&mut self) {
        let me = self.ctx.my_pe();
        let grace = self.cfg.reclaim_grace_ns;
        loop {
            if self.reclaimed == self.head || self.reclaimed >= self.read_tail() {
                return;
            }
            let abs = self.reclaimed;
            let slot = self.comp_slot(abs);
            // ordering: SdcReclaimRead
            self.ctx.proto_site(AtomicSite::SdcReclaimRead.id());
            let v = self.ctx.atomic_fetch(me, slot);
            if v == 0 {
                // Claimed (tail moved past it) but the marker is not
                // visible yet — the thief is still inside its critical
                // section. Check again next call.
                return;
            }
            let vol = v & COMP_VOL_MASK;
            if v & COMP_POISON != 0 {
                // The thief could not copy the block; take it back.
                // ordering: SdcReclaimRead (poisoned-slot CAS)
                self.ctx.proto_site(AtomicSite::SdcReclaimRead.id());
                if self.ctx.atomic_compare_swap(me, slot, v, 0) == v {
                    self.requeue_block(abs, vol);
                    self.stats.completions_poisoned += 1;
                    self.reclaimed += vol;
                    self.stats.reclaimed += vol;
                    self.stuck = None;
                }
                continue;
            }
            if v & COMP_CLAIMED != 0 {
                // In-flight claim: give the thief the grace period, then
                // reclaim. The thief's finalize CAS expects the marker,
                // so exactly one side wins the transition.
                let now = self.ctx.now_ns();
                match self.stuck {
                    Some((f, t0)) if f == abs => {
                        if now.saturating_sub(t0) < grace {
                            return;
                        }
                        // ordering: SdcReclaimRead (stuck-claim CAS)
                        self.ctx.proto_site(AtomicSite::SdcReclaimRead.id());
                        if self.ctx.atomic_compare_swap(me, slot, v, 0) == v {
                            self.requeue_block(abs, vol);
                            self.stats.claims_reclaimed += 1;
                            self.reclaimed += vol;
                            self.stats.reclaimed += vol;
                            self.stuck = None;
                        }
                        continue;
                    }
                    _ => {
                        self.stuck = Some((abs, now));
                        return;
                    }
                }
            }
            // Plain volume: the baseline completion signal.
            // ordering: SdcReclaimZero
            self.ctx.proto_site(AtomicSite::SdcReclaimZero.id());
            self.ctx.atomic_set(me, slot, 0);
            self.reclaimed += vol;
            self.stats.reclaimed += vol;
            self.stuck = None;
            debug_assert!(self.reclaimed <= self.head, "reclaim ran past head");
        }
    }

    /// Fault-mode steal: the Fig. 2 sequence with fallible ops, a claim
    /// marker so the owner can see in-flight steals, and insist-retried
    /// cleanup inside the critical section (module docs).
    fn steal_from_faulty(&mut self, target: usize) -> StealOutcome {
        self.stats.steal_attempts += 1;
        let ctx = self.ctx;
        let policy = self.cfg.retry;
        let lock = self.lock_addr();
        let tail_a = self.tail_addr();

        // 1. Lock, with abort checking while contended. Injected failures
        // burn the retry budget; plain contention gets a larger abort-
        // check budget before the thief walks away.
        let mut failures = 0u32;
        let mut contended = 0u32;
        loop {
            // ordering: SdcLockCas (thief lock)
            ctx.proto_site(AtomicSite::SdcLockCas.id());
            match ctx.try_atomic_compare_swap(target, lock, 0, 1) {
                Ok(0) => break,
                Ok(_) => {
                    contended += 1;
                    let mut meta = [0u64; 2];
                    // ordering: SdcMetaRead (lock-free abort peek)
                    ctx.proto_site(AtomicSite::SdcMetaRead.id());
                    match ctx.try_get_words(target, tail_a, &mut meta) {
                        Ok(()) => {
                            if meta[0] >= meta[1] {
                                self.stats.steals_closed += 1;
                                return StealOutcome::Closed;
                            }
                        }
                        Err(e) if is_down(&e) => {
                            self.stats.steals_failed += 1;
                            return StealOutcome::Failed { target_down: true };
                        }
                        Err(_) => {}
                    }
                    if contended > policy.max_attempts.saturating_mul(4) {
                        // The lock stayed hot the whole budget; treat it
                        // like an abort and come back later.
                        self.stats.steals_closed += 1;
                        return StealOutcome::Closed;
                    }
                }
                Err(e) => {
                    if is_down(&e) {
                        self.stats.steals_failed += 1;
                        return StealOutcome::Failed { target_down: true };
                    }
                    failures += 1;
                    if failures >= policy.max_attempts {
                        self.stats.steals_failed += 1;
                        return StealOutcome::Failed { target_down: false };
                    }
                    self.stats.steals_retried += 1;
                    ctx.compute(policy.backoff_ns(failures, &mut self.rng));
                }
            }
        }

        // Holding the lock from here: every early return must release it.

        // 2. Fetch tail and split.
        let mut meta = [0u64; 2];
        let got = retry_op(
            &policy,
            &mut self.rng,
            |ns| ctx.compute(ns),
            || self.stats.steals_retried += 1,
            || {
                // ordering: SdcMetaRead
                ctx.proto_site(AtomicSite::SdcMetaRead.id());
                ctx.try_get_words(target, tail_a, &mut meta)
            },
        );
        if let Err(e) = got {
            insist(ctx, || {
                // ordering: SdcUnlock
                ctx.proto_site(AtomicSite::SdcUnlock.id());
                ctx.try_atomic_set(target, lock, 0)
            });
            self.stats.steals_failed += 1;
            return StealOutcome::Failed {
                target_down: is_down(&e),
            };
        }
        let (tail, split) = (meta[0], meta[1]);
        let avail = split - tail;
        if avail == 0 {
            insist(ctx, || {
                // ordering: SdcUnlock
                ctx.proto_site(AtomicSite::SdcUnlock.id());
                ctx.try_atomic_set(target, lock, 0)
            });
            self.stats.steals_empty += 1;
            return StealOutcome::Empty;
        }
        let vol = self.cfg.policy.volume(avail, 0).max(1);
        let comp = self.comp_slot(tail);
        let marker = COMP_CLAIMED | vol;

        // 2b. Write the claim marker *before* publishing the new tail, so
        // the owner can recover the claim if we die past this point. The
        // slot is zero here: its previous use was reclaimed before the
        // ring wrapped.
        let put = retry_op(
            &policy,
            &mut self.rng,
            |ns| ctx.compute(ns),
            || self.stats.steals_retried += 1,
            || {
                // ordering: SdcComplete (claim marker)
                ctx.proto_site(AtomicSite::SdcComplete.id());
                ctx.try_atomic_set(target, comp, marker)
            },
        );
        if let Err(e) = put {
            insist(ctx, || {
                // ordering: SdcUnlock
                ctx.proto_site(AtomicSite::SdcUnlock.id());
                ctx.try_atomic_set(target, lock, 0)
            });
            self.stats.steals_failed += 1;
            return StealOutcome::Failed {
                target_down: is_down(&e),
            };
        }

        // 3. Publish the new tail.
        let put = retry_op(
            &policy,
            &mut self.rng,
            |ns| ctx.compute(ns),
            || self.stats.steals_retried += 1,
            || {
                // ordering: SdcTailPut
                ctx.proto_site(AtomicSite::SdcTailPut.id());
                ctx.try_put_word(target, tail_a, tail + vol)
            },
        );
        if let Err(e) = put {
            // Roll the marker back — no claim was published.
            insist(ctx, || {
                // ordering: SdcComplete (marker rollback CAS)
                ctx.proto_site(AtomicSite::SdcComplete.id());
                ctx.try_atomic_compare_swap(target, comp, marker, 0)
                    .map(|_| ())
            });
            insist(ctx, || {
                // ordering: SdcUnlock
                ctx.proto_site(AtomicSite::SdcUnlock.id());
                ctx.try_atomic_set(target, lock, 0)
            });
            self.stats.steals_failed += 1;
            return StealOutcome::Failed {
                target_down: is_down(&e),
            };
        }

        // 4. Unlock. If the target dies here the lock dies with it; the
        // claim is published, so proceed — recovery goes through the
        // marker protocol either way.
        insist(ctx, || {
            // ordering: SdcUnlock
            ctx.proto_site(AtomicSite::SdcUnlock.id());
            ctx.try_atomic_set(target, lock, 0)
        });

        // Make room locally before landing the block.
        while self.live_span() + vol > self.cfg.capacity as u64 {
            self.stats.owner_polls += 1;
            self.progress();
            self.ctx.compute(100);
            self.ctx.idle_hint();
        }

        // 5. Copy the stolen records.
        let start = self.buf.ring().slot(tail);
        let buf = self.buf;
        let mut scratch = std::mem::take(&mut self.scratch);
        let got = retry_op(
            &policy,
            &mut self.rng,
            |ns| ctx.compute(ns),
            || self.stats.steals_retried += 1,
            || {
                // ordering: SdcPayloadRead
                ctx.proto_site(AtomicSite::SdcPayloadRead.id());
                buf.try_steal_copy(ctx, target, start, vol as usize, &mut scratch)
            },
        );
        if let Err(e) = got {
            // Claimed but uncopyable: poison so the owner re-enqueues
            // promptly. If the poison is lost too, the grace-period
            // reclaim recovers the block.
            let _ = retry_op(
                &policy,
                &mut self.rng,
                |ns| ctx.compute(ns),
                || self.stats.steals_retried += 1,
                || {
                    // ordering: SdcComplete (poison CAS)
                    ctx.proto_site(AtomicSite::SdcComplete.id());
                    ctx.try_atomic_compare_swap(target, comp, marker, COMP_POISON | vol)
                        .map(|_| ())
                },
            );
            self.scratch = scratch;
            self.stats.steals_aborted += 1;
            return StealOutcome::Aborted {
                target_down: is_down(&e),
            };
        }

        // 6. Finalize: replace the marker with the plain volume — the
        // baseline's deferred completion signal, made conditional so a
        // reclaimed claim is detected instead of double-counted.
        let fin = retry_op(
            &policy,
            &mut self.rng,
            |ns| ctx.compute(ns),
            || self.stats.steals_retried += 1,
            || {
                // ordering: SdcComplete (finalize CAS)
                ctx.proto_site(AtomicSite::SdcComplete.id());
                ctx.try_atomic_compare_swap(target, comp, marker, vol)
            },
        );
        match fin {
            Ok(prev) if prev == marker => {
                // ordering: SdcPayloadWrite (landing a stolen block)
                ctx.proto_site(AtomicSite::SdcPayloadWrite.id());
                self.buf
                    .write_local_block(ctx, self.head, vol as usize, &scratch);
                self.head += vol;
                self.scratch = scratch;
                self.stats.steals_won += 1;
                self.stats.tasks_stolen += vol;
                self.stats.enqueued += vol;
                StealOutcome::Got { tasks: vol }
            }
            Ok(_) => {
                // The owner reclaimed the claim during the copy; the
                // block already returned to its ring. Discard our copy.
                self.scratch = scratch;
                self.stats.steals_aborted += 1;
                StealOutcome::Aborted { target_down: false }
            }
            Err(e) => {
                self.scratch = scratch;
                self.stats.steals_aborted += 1;
                StealOutcome::Aborted {
                    target_down: is_down(&e),
                }
            }
        }
    }
}

impl StealQueue for SdcQueue<'_> {
    fn enqueue(&mut self, task: &TaskDescriptor) -> bool {
        if self.live_span() >= self.cfg.capacity as u64 {
            self.progress();
            if self.live_span() >= self.cfg.capacity as u64 {
                return false;
            }
        }
        // ordering: SdcPayloadWrite
        self.ctx.proto_site(AtomicSite::SdcPayloadWrite.id());
        self.buf.write_local(self.ctx, self.head, task);
        self.head += 1;
        self.stats.enqueued += 1;
        true
    }

    fn pop_local(&mut self) -> Option<TaskDescriptor> {
        if self.split == self.head {
            return None;
        }
        self.head -= 1;
        self.stats.popped += 1;
        Some(self.buf.read_local(self.ctx, self.head))
    }

    fn local_count(&self) -> u64 {
        self.head - self.split
    }

    fn shared_estimate(&mut self) -> u64 {
        self.split - self.read_tail()
    }

    fn release(&mut self) -> bool {
        if self.retired || self.parked {
            return false;
        }
        let nlocal = self.local_count();
        if nlocal == 0 {
            return false;
        }
        // Lock-free release is only safe when the shared portion is
        // empty: a concurrent thief sees either the empty queue (aborts)
        // or the grown split (steals from it) — both consistent.
        if self.read_tail() < self.split {
            return false;
        }
        let k = nlocal - nlocal / 2;
        self.split += k;
        // ordering: SdcSplitPublish
        self.ctx.proto_site(AtomicSite::SdcSplitPublish.id());
        self.ctx
            .atomic_set(self.ctx.my_pe(), self.split_addr(), self.split);
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.releases += 1;
        // Rooted-tree steal bound: this exposure of `k` unclaimed tasks
        // admits at most `max_steals(k)` successful steals before the
        // shared region runs dry (each steal shrinks `avail` by exactly
        // one cascade step; owner acquires only shrink it further), and
        // releases require `tail >= split`, so budgets never overlap.
        self.stats.steal_budget += self.cfg.policy.max_steals(k);
        true
    }

    fn acquire(&mut self) -> bool {
        debug_assert_eq!(
            self.split, self.head,
            "acquire requires an empty local portion"
        );
        // A retired (or parked) queue holds its own lock and has already
        // pulled the whole shared region local — nothing to acquire, and
        // re-locking would self-deadlock.
        if self.retired || self.parked {
            self.stats.acquire_misses += 1;
            return false;
        }
        // Thieves mutate tail under the lock, so the owner must take it
        // to move the split point down consistently (§3.1).
        self.lock_own();
        let tail = self.read_tail();
        let avail = self.split - tail;
        if avail == 0 {
            self.unlock_own();
            self.stats.acquire_misses += 1;
            return false;
        }
        let take = avail - avail / 2;
        self.split -= take;
        // ordering: SdcSplitPublish
        self.ctx.proto_site(AtomicSite::SdcSplitPublish.id());
        self.ctx
            .atomic_set(self.ctx.my_pe(), self.split_addr(), self.split);
        self.unlock_own();
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.acquires += 1;
        true
    }

    fn progress(&mut self) {
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
        }
        if self.ctx.faults_active() {
            self.progress_faulty();
            return;
        }
        // Deferred-copy reclaim: follow the chain of completion records
        // starting at the reclaim watermark; each finished block wrote its
        // volume into the slot named by its starting index.
        let me = self.ctx.my_pe();
        loop {
            if self.reclaimed == self.head {
                return;
            }
            // Stop at the shared/local boundary: slots at and above the
            // published tail are live.
            let slot = self.comp_slot(self.reclaimed);
            // ordering: SdcReclaimRead
            self.ctx.proto_site(AtomicSite::SdcReclaimRead.id());
            let v = self.ctx.atomic_fetch(me, slot);
            if v == 0 {
                return;
            }
            // ordering: SdcReclaimZero
            self.ctx.proto_site(AtomicSite::SdcReclaimZero.id());
            self.ctx.atomic_set(me, slot, 0);
            self.reclaimed += v;
            self.stats.reclaimed += v;
            debug_assert!(self.reclaimed <= self.head, "reclaim ran past head");
        }
    }

    fn steal_from(&mut self, target: usize) -> StealOutcome {
        debug_assert_ne!(target, self.ctx.my_pe(), "stealing from self");
        if self.ctx.faults_active() {
            return self.steal_from_faulty(target);
        }
        self.stats.steal_attempts += 1;

        // 1. Lock, with abort checking while contended.
        loop {
            // ordering: SdcLockCas (owner steals from a peer)
            self.ctx.proto_site(AtomicSite::SdcLockCas.id());
            let prev = self.ctx.atomic_compare_swap(target, self.lock_addr(), 0, 1);
            if prev == 0 {
                break;
            }
            {
                // Aborting steals: peek at the metadata without the lock;
                // if the queue drained, give up instead of queueing on
                // the lock (§3.1).
                let mut meta = [0u64; 2];
                // ordering: SdcMetaRead (lock-free abort peek)
                self.ctx.proto_site(AtomicSite::SdcMetaRead.id());
                self.ctx.get_words(target, self.tail_addr(), &mut meta);
                let (tail, split) = (meta[0], meta[1]);
                if tail >= split {
                    self.stats.steals_closed += 1;
                    return StealOutcome::Closed;
                }
            }
        }

        // 2. Fetch tail and split (contiguous: one 16-byte get).
        let mut meta = [0u64; 2];
        // ordering: SdcMetaRead
        self.ctx.proto_site(AtomicSite::SdcMetaRead.id());
        self.ctx.get_words(target, self.tail_addr(), &mut meta);
        let (tail, split) = (meta[0], meta[1]);
        let avail = split - tail;
        if avail == 0 {
            // ordering: SdcUnlock
            self.ctx.proto_site(AtomicSite::SdcUnlock.id());
            self.ctx.atomic_set(target, self.lock_addr(), 0);
            self.stats.steals_empty += 1;
            return StealOutcome::Empty;
        }
        let vol = self.cfg.policy.volume(avail, 0).max(1);

        // 3. Publish the new tail; 4. unlock.
        // ordering: SdcTailPut
        self.ctx.proto_site(AtomicSite::SdcTailPut.id());
        self.ctx.put_words(target, self.tail_addr(), &[tail + vol]);
        // ordering: SdcUnlock
        self.ctx.proto_site(AtomicSite::SdcUnlock.id());
        self.ctx.atomic_set(target, self.lock_addr(), 0);

        // Make room locally before landing the block.
        while self.live_span() + vol > self.cfg.capacity as u64 {
            self.stats.owner_polls += 1;
            self.progress();
            self.ctx.compute(100);
            self.ctx.idle_hint();
        }

        // 5. Copy the stolen records.
        let start = self.buf.ring().slot(tail);
        let mut scratch = std::mem::take(&mut self.scratch);
        // ordering: SdcPayloadRead
        self.ctx.proto_site(AtomicSite::SdcPayloadRead.id());
        self.buf
            .steal_copy(self.ctx, target, start, vol as usize, &mut scratch);

        // 6. Deferred completion signal (passive) — staged when batching
        // is on, so a thief on a steal streak issues one flush of
        // non-blocking puts instead of a put per steal.
        let comp = self.comp_slot(tail);
        if self.cfg.comp_batch > 0 {
            self.pending_comps.push((target, comp, vol));
            if self.pending_comps.len() >= self.cfg.comp_batch {
                self.flush_pending_comps();
            }
        } else {
            // ordering: SdcComplete
            self.ctx.proto_site(AtomicSite::SdcComplete.id());
            self.ctx.atomic_set_nbi(target, comp, vol);
        }

        // ordering: SdcPayloadWrite (landing a stolen block)
        self.ctx.proto_site(AtomicSite::SdcPayloadWrite.id());
        self.buf
            .write_local_block(self.ctx, self.head, vol as usize, &scratch);
        self.head += vol;
        self.scratch = scratch;

        self.stats.steals_won += 1;
        self.stats.tasks_stolen += vol;
        self.stats.enqueued += vol;
        StealOutcome::Got { tasks: vol }
    }

    fn probe(&self, target: usize) -> bool {
        let mut meta = [0u64; 2];
        // ordering: SdcMetaRead (read-only probe)
        self.ctx.proto_site(AtomicSite::SdcMetaRead.id());
        if self.ctx.faults_active() {
            if self
                .ctx
                .try_get_words(target, self.tail_addr(), &mut meta)
                .is_err()
            {
                return false; // unreachable target: nothing to steal here
            }
        } else {
            self.ctx.get_words(target, self.tail_addr(), &mut meta);
        }
        meta[0] < meta[1]
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn flush_completions(&mut self) {
        if !self.pending_comps.is_empty() {
            self.flush_pending_comps();
        }
        self.ctx.quiet();
    }

    fn retire(&mut self) {
        if self.retired {
            return;
        }
        self.retired = true;
        if self.parked {
            return; // lock already held, shared region already drained
        }
        self.lock_and_drain();
    }

    fn park(&mut self) {
        if self.parked || self.retired {
            return;
        }
        self.parked = true;
        self.lock_and_drain();
    }

    fn unpark(&mut self) {
        if !self.parked || self.retired {
            return;
        }
        self.parked = false;
        // Shared region drained at park time (split == tail), so thieves
        // re-admitted by the unlock still abort on tail >= split until
        // the owner releases fresh work.
        self.unlock_own();
    }

    fn occupancy(&self) -> u64 {
        self.live_span()
    }
}
