//! The baseline SDC queue (paper §3): Scioto's "Split queue, Deferred
//! copy, Aborting steals", ported to one-sided operations.
//!
//! Heap layout per PE: a spinlock word, the published `tail` and `split`
//! indices (absolute u64 counters — SDC has no bit-packing constraints),
//! a completion ring (one word per task slot, keyed by a stolen block's
//! starting slot), and the task buffer.
//!
//! A steal performs the six communications of Fig. 2:
//!
//! 1. acquire the remote spinlock (atomic compare-swap; while contended,
//!    the thief polls the metadata and *aborts* if the queue drained —
//!    the "aborting steals" optimization);
//! 2. fetch `tail` and `split` (one 16-byte get);
//! 3. publish the new `tail` (put);
//! 4. release the lock (atomic);
//! 5. copy the stolen records (get, gathered across the ring wrap);
//! 6. signal completion (passive atomic put — the "deferred copy"),
//!    letting the owner reclaim ring space lazily in `progress`.
//!
//! Five of the six block the thief; only the completion signal is
//! passive. Owner-side `release` needs no lock (it only grows `split`
//! while the shared portion is empty); `acquire` must take the lock
//! because thieves race on `tail`/`split` consistency.

use sws_shmem::{ShmemCtx, SymAddr};
use sws_task::TaskDescriptor;

use crate::queue::buffer::TaskBuffer;
use crate::queue::{QueueConfig, QueueStats, StealOutcome, StealQueue};

/// Word offsets of the SDC metadata block.
const LOCK: usize = 0;
const TAIL: usize = 1;
const SPLIT: usize = 2;
const META_WORDS: usize = 3;


/// One PE's SDC task queue.
pub struct SdcQueue<'a> {
    ctx: &'a ShmemCtx,
    cfg: QueueConfig,
    meta: SymAddr,
    comp: SymAddr,
    buf: TaskBuffer,
    /// Next enqueue slot (absolute).
    head: u64,
    /// First local task (absolute, owner's mirror of the published split).
    split: u64,
    /// Everything below this (absolute) has been reclaimed.
    reclaimed: u64,
    stats: QueueStats,
    scratch: Vec<u64>,
}

impl<'a> SdcQueue<'a> {
    /// Collectively construct one queue per PE (identical `cfg` everywhere).
    pub fn new(ctx: &'a ShmemCtx, cfg: QueueConfig) -> SdcQueue<'a> {
        cfg.validate();
        let meta = ctx.alloc_words(META_WORDS);
        let comp = ctx.alloc_words(cfg.capacity);
        let buf_addr = ctx.alloc_words(cfg.buffer_words());
        // lock = 0, tail = 0, split = 0 — the heap is zeroed, but publish
        // explicitly for clarity.
        ctx.local_write_words(meta, &[0, 0, 0]);
        ctx.barrier_all();
        SdcQueue {
            ctx,
            cfg,
            meta,
            comp,
            buf: TaskBuffer::new(buf_addr, cfg.capacity, cfg.task_words),
            head: 0,
            split: 0,
            reclaimed: 0,
            stats: QueueStats::default(),
            scratch: Vec::new(),
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    #[inline]
    fn live_span(&self) -> u64 {
        self.head - self.reclaimed
    }

    #[inline]
    fn lock_addr(&self) -> SymAddr {
        self.meta.offset(LOCK)
    }

    #[inline]
    fn tail_addr(&self) -> SymAddr {
        self.meta.offset(TAIL)
    }

    #[inline]
    fn split_addr(&self) -> SymAddr {
        self.meta.offset(SPLIT)
    }

    /// Completion-ring slot for a stolen block starting at absolute
    /// index `tail`.
    #[inline]
    fn comp_slot(&self, tail: u64) -> SymAddr {
        self.comp.offset(self.buf.ring().slot(tail))
    }

    /// Owner: read the published tail (thieves advance it remotely).
    fn read_tail(&self) -> u64 {
        self.ctx.atomic_fetch(self.ctx.my_pe(), self.tail_addr())
    }

    /// Owner: spin on our own queue lock (needed by `acquire`; thieves
    /// hold it during their metadata update).
    fn lock_own(&mut self) {
        let me = self.ctx.my_pe();
        loop {
            if self.ctx.atomic_compare_swap(me, self.lock_addr(), 0, 1) == 0 {
                return;
            }
            self.stats.owner_polls += 1;
        }
    }

    fn unlock_own(&self) {
        self.ctx.atomic_set(self.ctx.my_pe(), self.lock_addr(), 0);
    }
}

impl StealQueue for SdcQueue<'_> {
    fn enqueue(&mut self, task: &TaskDescriptor) -> bool {
        if self.live_span() >= self.cfg.capacity as u64 {
            self.progress();
            if self.live_span() >= self.cfg.capacity as u64 {
                return false;
            }
        }
        self.buf.write_local(self.ctx, self.head, task);
        self.head += 1;
        self.stats.enqueued += 1;
        true
    }

    fn pop_local(&mut self) -> Option<TaskDescriptor> {
        if self.split == self.head {
            return None;
        }
        self.head -= 1;
        self.stats.popped += 1;
        Some(self.buf.read_local(self.ctx, self.head))
    }

    fn local_count(&self) -> u64 {
        self.head - self.split
    }

    fn shared_estimate(&mut self) -> u64 {
        self.split - self.read_tail()
    }

    fn release(&mut self) -> bool {
        let nlocal = self.local_count();
        if nlocal == 0 {
            return false;
        }
        // Lock-free release is only safe when the shared portion is
        // empty: a concurrent thief sees either the empty queue (aborts)
        // or the grown split (steals from it) — both consistent.
        if self.read_tail() < self.split {
            return false;
        }
        let k = nlocal - nlocal / 2;
        self.split += k;
        self.ctx
            .atomic_set(self.ctx.my_pe(), self.split_addr(), self.split);
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.releases += 1;
        true
    }

    fn acquire(&mut self) -> bool {
        debug_assert_eq!(
            self.split, self.head,
            "acquire requires an empty local portion"
        );
        // Thieves mutate tail under the lock, so the owner must take it
        // to move the split point down consistently (§3.1).
        self.lock_own();
        let tail = self.read_tail();
        let avail = self.split - tail;
        if avail == 0 {
            self.unlock_own();
            self.stats.acquire_misses += 1;
            return false;
        }
        let take = avail - avail / 2;
        self.split -= take;
        self.ctx
            .atomic_set(self.ctx.my_pe(), self.split_addr(), self.split);
        self.unlock_own();
        self.ctx.compute(self.cfg.split_update_ns);
        self.stats.acquires += 1;
        true
    }

    fn progress(&mut self) {
        // Deferred-copy reclaim: follow the chain of completion records
        // starting at the reclaim watermark; each finished block wrote its
        // volume into the slot named by its starting index.
        let me = self.ctx.my_pe();
        loop {
            if self.reclaimed == self.head {
                return;
            }
            // Stop at the shared/local boundary: slots at and above the
            // published tail are live.
            let slot = self.comp_slot(self.reclaimed);
            let v = self.ctx.atomic_fetch(me, slot);
            if v == 0 {
                return;
            }
            self.ctx.atomic_set(me, slot, 0);
            self.reclaimed += v;
            self.stats.reclaimed += v;
            debug_assert!(self.reclaimed <= self.head, "reclaim ran past head");
        }
    }

    fn steal_from(&mut self, target: usize) -> StealOutcome {
        debug_assert_ne!(target, self.ctx.my_pe(), "stealing from self");
        self.stats.steal_attempts += 1;

        // 1. Lock, with abort checking while contended.
        loop {
            let prev = self
                .ctx
                .atomic_compare_swap(target, self.lock_addr(), 0, 1);
            if prev == 0 {
                break;
            }
            {
                // Aborting steals: peek at the metadata without the lock;
                // if the queue drained, give up instead of queueing on
                // the lock (§3.1).
                let mut meta = [0u64; 2];
                self.ctx.get_words(target, self.tail_addr(), &mut meta);
                let (tail, split) = (meta[0], meta[1]);
                if tail >= split {
                    self.stats.steals_closed += 1;
                    return StealOutcome::Closed;
                }
            }
        }

        // 2. Fetch tail and split (contiguous: one 16-byte get).
        let mut meta = [0u64; 2];
        self.ctx.get_words(target, self.tail_addr(), &mut meta);
        let (tail, split) = (meta[0], meta[1]);
        let avail = split - tail;
        if avail == 0 {
            self.ctx.atomic_set(target, self.lock_addr(), 0);
            self.stats.steals_empty += 1;
            return StealOutcome::Empty;
        }
        let vol = self.cfg.policy.volume(avail, 0).max(1);

        // 3. Publish the new tail; 4. unlock.
        self.ctx.put_words(target, self.tail_addr(), &[tail + vol]);
        self.ctx.atomic_set(target, self.lock_addr(), 0);

        // Make room locally before landing the block.
        while self.live_span() + vol > self.cfg.capacity as u64 {
            self.stats.owner_polls += 1;
            self.progress();
            self.ctx.compute(100);
        }

        // 5. Copy the stolen records.
        let start = self.buf.ring().slot(tail);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.buf
            .steal_copy(self.ctx, target, start, vol as usize, &mut scratch);

        // 6. Deferred completion signal (passive).
        self.ctx.atomic_set_nbi(target, self.comp_slot(tail), vol);

        self.buf
            .write_local_block(self.ctx, self.head, vol as usize, &scratch);
        self.head += vol;
        self.scratch = scratch;

        self.stats.steals_won += 1;
        self.stats.tasks_stolen += vol;
        self.stats.enqueued += vol;
        StealOutcome::Got { tasks: vol }
    }

    fn probe(&self, target: usize) -> bool {
        let mut meta = [0u64; 2];
        self.ctx.get_words(target, self.tail_addr(), &mut meta);
        meta[0] < meta[1]
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn flush_completions(&mut self) {
        self.ctx.quiet();
    }
}
