//! Figure 8 (a–f): the Unbalanced Tree Search benchmark across PE
//! counts, SDC vs SWS.
//!
//! The paper searches a 270-billion-node tree (T1WL) on up to 2,112
//! cores. This harness searches a tree of the same geometric family
//! scaled to in-process size (~10⁵ nodes at the default depth limit 12;
//! `SWS_SCALE=4` raises it to ~4·10⁵). UTS tasks are sub-µs, making
//! this the steal-latency-sensitive workload.
//!
//! Expected shapes (paper §5.3.2): SWS ahead in throughput (8a) by
//! roughly 5–10 % in runtime (8b); both efficient at scale with SWS
//! keeping a small edge (8c); tiny variation (8d); steal times 3–4×
//! lower for SWS (8e); SWS search time low and flat vs SDC's growth (8f).

use sws_bench::{scale, six_panels};
use sws_core::QueueConfig;
use sws_workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    let depth = match scale() {
        s if s >= 4.0 => 14,
        s if s >= 2.0 => 13,
        s if s <= 0.3 => 10,
        s if s <= 0.6 => 11,
        _ => 12,
    };
    let params = UtsParams::geo_small(depth);
    let oracle = params.sequential_count();
    six_panels(
        "Fig8",
        &format!(
            "UTS geometric(linear) depth {depth}: {} nodes, max depth {}, {} leaves",
            oracle.nodes, oracle.max_depth, oracle.leaves
        ),
        QueueConfig::new(16384, 48),
        move |_run| UtsWorkload::new(params),
    );
}
