//! Extension experiment: node topology and locality-aware victim
//! selection.
//!
//! The paper's testbed packs 48 cores per node, so many steals could use
//! the shared-memory transport instead of the fabric; the related work
//! it cites (SLAW, HotSLAW, hierarchical Habanero) exploits exactly
//! that. This harness gives the network model the node topology and
//! compares uniform victim selection against a same-node-preferring
//! policy on SWS.

use sws_bench::{banner, ms, pe_sweep, runs_per_config};
use sws_core::QueueConfig;
use sws_sched::{run_workload, QueueKind, RunConfig, SchedConfig, VictimPolicy};
use sws_shmem::NetModel;
use sws_workloads::uts::{UtsParams, UtsWorkload};

const NODE: usize = 8;

fn main() {
    let params = UtsParams::geo_small(11);
    let oracle = params.sequential_count();
    banner(
        "Extension: locality",
        &format!(
            "node-aware steals ({NODE} PEs/node, 400 ns intra vs 1500 ns fabric) — UTS {} nodes",
            oracle.nodes
        ),
    );
    let runs = runs_per_config().max(1);
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "PEs", "uniform(ms)", "local80(ms)", "steal-U(ms)", "steal-L(ms)"
    );
    for &p in &pe_sweep() {
        if p <= NODE {
            continue; // topology only matters across nodes
        }
        let mut mk = [0.0f64; 2];
        let mut st = [0.0f64; 2];
        for (i, victim) in [
            VictimPolicy::Uniform,
            VictimPolicy::Hierarchical {
                node_size: NODE,
                local_pct: 80,
            },
        ]
        .into_iter()
        .enumerate()
        {
            for r in 0..runs {
                let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(16384, 48))
                    .with_victim(victim)
                    .with_seed(0x10CA + r as u64 * 7919);
                let mut cfg = RunConfig::new(p, sched);
                cfg.net = NetModel::edr_infiniband_nodes(NODE);
                let report = run_workload(&cfg, &UtsWorkload::new(params));
                assert_eq!(report.total_tasks(), oracle.nodes);
                mk[i] += ms(report.makespan_ns) / runs as f64;
                st[i] += ms(report.total_steal_ns()) / runs as f64;
            }
        }
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            p, mk[0], mk[1], st[0], st[1]
        );
    }
    println!();
    println!("expected: with same-node steals 3.75× cheaper, the local-80%");
    println!("policy lowers steal time; runtime gains depend on how well work");
    println!("spreads across nodes (locality trades balance for latency).");
}
