//! Ablation (§4.3): steal damping on vs off.
//!
//! Damping protects the 24-bit asteals counter from overflowing under
//! sustained fruitless stealing by probing empty-mode targets read-only.
//! The paper's claim: "enabling steal dampening did not incur any
//! significant performance penalty over non-damped runs". This harness
//! compares makespans and claiming-fetch-add counts with damping on and
//! off, on the search-heavy end of UTS.

use sws_bench::{banner, ms, pe_sweep, runs_per_config};
use sws_core::QueueConfig;
use sws_sched::{run_workload, QueueKind, RunConfig, SchedConfig};
use sws_shmem::OpKind;
use sws_workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    let params = UtsParams::geo_small(11);
    let oracle = params.sequential_count();
    banner(
        "Ablation §4.3",
        &format!("steal damping on/off — UTS {} nodes", oracle.nodes),
    );
    let runs = runs_per_config().max(1);
    println!(
        "{:>6} {:>9} {:>14} {:>16} {:>16} {:>14}",
        "PEs", "damping", "makespan(ms)", "claim fadds", "probe fetches", "empty steals"
    );
    for &p in &pe_sweep() {
        for damping in [true, false] {
            let mut mk = 0.0;
            let (mut fadds, mut fetches, mut empties) = (0u64, 0u64, 0u64);
            for r in 0..runs {
                let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(16384, 48))
                    .with_damping(damping)
                    .with_seed(0xDA3B + r as u64 * 7919);
                let report = run_workload(&RunConfig::new(p, sched), &UtsWorkload::new(params));
                assert_eq!(report.total_tasks(), oracle.nodes);
                mk += ms(report.makespan_ns) / runs as f64;
                fadds += report.total_comm().count(OpKind::AtomicFetchAdd);
                fetches += report.total_comm().count(OpKind::AtomicFetch);
                empties += report
                    .workers
                    .iter()
                    .map(|w| w.queue.steals_empty)
                    .sum::<u64>();
            }
            println!(
                "{:>6} {:>9} {:>14.3} {:>16} {:>16} {:>14}",
                p,
                if damping { "on" } else { "off" },
                mk,
                fadds / runs as u64,
                fetches / runs as u64,
                empties / runs as u64
            );
        }
    }
    println!();
    println!("expected: damping ≈ no makespan cost (§4.3) while converting");
    println!("fruitless claiming fetch-adds into read-only probes.");
}
