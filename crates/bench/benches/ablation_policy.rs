//! Ablation (§2 / [17]): steal-volume policy — steal-half vs steal-one
//! vs steal-quarter.
//!
//! The paper adopts steal-half, citing Hendler & Shavit's result that
//! taking half the available work best balances steal-attempt count
//! against work dispersion. SWS's single-fetch-add protocol supports any
//! volume schedule that is a pure function of `(itasks, asteals)`; this
//! harness quantifies the choice on the fine-grained UTS workload.

use sws_bench::{banner, ms, pe_sweep, runs_per_config};
use sws_core::steal_half::StealPolicy;
use sws_core::QueueConfig;
use sws_sched::{run_workload, QueueKind, RunConfig, SchedConfig};
use sws_workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    let params = UtsParams::geo_small(11);
    let oracle = params.sequential_count();
    banner(
        "Ablation steal policy",
        &format!("half vs one vs quarter — UTS {} nodes", oracle.nodes),
    );
    let runs = runs_per_config().max(1);
    println!(
        "{:>6} {:>9} {:>14} {:>10} {:>14} {:>14}",
        "PEs", "policy", "makespan(ms)", "steals", "steal(ms)", "search(ms)"
    );
    for &p in &pe_sweep() {
        for (label, policy) in [
            ("half", StealPolicy::Half),
            ("quarter", StealPolicy::Quarter),
            ("one", StealPolicy::One),
        ] {
            let mut mk = 0.0;
            let (mut steals, mut steal_ms, mut search_ms) = (0u64, 0.0, 0.0);
            for r in 0..runs {
                let queue = QueueConfig::new(16384, 48).with_policy(policy);
                let sched =
                    SchedConfig::new(QueueKind::Sws, queue).with_seed(0x11CE + r as u64 * 7919);
                let report = run_workload(&RunConfig::new(p, sched), &UtsWorkload::new(params));
                assert_eq!(report.total_tasks(), oracle.nodes);
                mk += ms(report.makespan_ns) / runs as f64;
                steals += report.total_steals() / runs as u64;
                steal_ms += ms(report.total_steal_ns()) / runs as f64;
                search_ms += ms(report.total_search_ns()) / runs as f64;
            }
            println!(
                "{:>6} {:>9} {:>14.3} {:>10} {:>14.3} {:>14.3}",
                p, label, mk, steals, steal_ms, search_ms
            );
        }
    }
    println!();
    println!("expected: steal-one needs far more steals (and search) to disperse");
    println!("work; steal-half wins — the Hendler-Shavit tradeoff the paper cites.");
}
