//! Microbenchmarks for the hot pure-logic components: the stealval
//! codec (executed on every steal), the steal-half arithmetic, task
//! record encode/decode (every enqueue/steal), and SHA-1 (every UTS
//! node). These are real wall-clock measurements, unlike the
//! virtual-time experiment harnesses; they use a self-contained
//! timing loop so the workspace carries no external bench framework.

use std::hint::black_box;
use std::time::Instant;

use sws_core::steal_half::{claimed_before, max_steals, volume};
use sws_core::stealval::{Gate, Layout, StealVal};
use sws_task::TaskDescriptor;
use sws_workloads::sha1::{sha1, spawn_child};

/// Time `f` over enough iterations to fill ~50 ms, reporting ns/iter.
/// One warm-up pass sizes the batch so cheap ops aren't dominated by
/// clock reads.
fn bench(name: &str, mut f: impl FnMut()) {
    // Calibrate: how many iterations fit in ~5 ms?
    let mut n: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..n {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 5 || n >= 1 << 30 {
            break;
        }
        n *= 8;
    }
    // Measure: best of 5 batches (minimum filters scheduler noise).
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..n {
            f();
        }
        let per = t0.elapsed().as_nanos() as f64 / n as f64;
        if per < best {
            best = per;
        }
    }
    println!("{name:<40} {best:>10.2} ns/iter  ({n} iters/batch)");
}

fn bench_stealval() {
    let sv = StealVal {
        asteals: 2,
        gate: Gate::Open { epoch: 1 },
        itasks: 150,
        tail: 500,
    };
    bench("stealval/encode_epochs", || {
        black_box(Layout::Epochs.encode(black_box(sv)));
    });
    let raw = Layout::Epochs.encode(sv);
    bench("stealval/decode_epochs", || {
        black_box(Layout::Epochs.decode(black_box(raw)));
    });
}

fn bench_steal_half() {
    bench("steal_half/volume_T150", || {
        black_box(volume(black_box(150), black_box(2)));
    });
    bench("steal_half/claimed_before_max_itasks", || {
        black_box(claimed_before(black_box((1 << 19) - 1), black_box(10)));
    });
    bench("steal_half/max_steals_max_itasks", || {
        black_box(max_steals(black_box((1 << 19) - 1)));
    });
}

fn bench_task_codec() {
    let payload = [0xABu8; 40];
    let task = TaskDescriptor::new(3, &payload);
    let mut rec = vec![0u64; 6];
    bench("task/encode_48B", || {
        black_box(&task).encode(black_box(&mut rec));
    });
    task.encode(&mut rec);
    bench("task/decode_48B", || {
        black_box(TaskDescriptor::decode(black_box(&rec)));
    });
}

fn bench_sha1() {
    let state = [7u8; 20];
    bench("sha1/uts_spawn_child", || {
        black_box(spawn_child(black_box(&state), black_box(3)));
    });
    let big = vec![0x5Au8; 4096];
    bench("sha1/4KiB", || {
        black_box(sha1(black_box(&big)));
    });
}

fn main() {
    println!("microbenchmarks (wall clock, best of 5 batches)");
    bench_stealval();
    bench_steal_half();
    bench_task_codec();
    bench_sha1();
}
