//! Criterion microbenchmarks for the hot pure-logic components: the
//! stealval codec (executed on every steal), the steal-half arithmetic,
//! task record encode/decode (every enqueue/steal), and SHA-1 (every
//! UTS node). These are real wall-clock measurements, unlike the
//! virtual-time experiment harnesses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sws_core::steal_half::{claimed_before, max_steals, volume};
use sws_core::stealval::{Gate, Layout, StealVal};
use sws_task::TaskDescriptor;
use sws_workloads::sha1::{sha1, spawn_child};

fn bench_stealval(c: &mut Criterion) {
    let sv = StealVal {
        asteals: 2,
        gate: Gate::Open { epoch: 1 },
        itasks: 150,
        tail: 500,
    };
    c.bench_function("stealval/encode_epochs", |b| {
        b.iter(|| Layout::Epochs.encode(black_box(sv)))
    });
    let raw = Layout::Epochs.encode(sv);
    c.bench_function("stealval/decode_epochs", |b| {
        b.iter(|| Layout::Epochs.decode(black_box(raw)))
    });
}

fn bench_steal_half(c: &mut Criterion) {
    c.bench_function("steal_half/volume_T150", |b| {
        b.iter(|| volume(black_box(150), black_box(2)))
    });
    c.bench_function("steal_half/claimed_before_max_itasks", |b| {
        b.iter(|| claimed_before(black_box((1 << 19) - 1), black_box(10)))
    });
    c.bench_function("steal_half/max_steals_max_itasks", |b| {
        b.iter(|| max_steals(black_box((1 << 19) - 1)))
    });
}

fn bench_task_codec(c: &mut Criterion) {
    let payload = [0xABu8; 40];
    let task = TaskDescriptor::new(3, &payload);
    let mut rec = vec![0u64; 6];
    c.bench_function("task/encode_48B", |b| {
        b.iter(|| black_box(&task).encode(black_box(&mut rec)))
    });
    task.encode(&mut rec);
    c.bench_function("task/decode_48B", |b| {
        b.iter(|| TaskDescriptor::decode(black_box(&rec)))
    });
}

fn bench_sha1(c: &mut Criterion) {
    let state = [7u8; 20];
    c.bench_function("sha1/uts_spawn_child", |b| {
        b.iter(|| spawn_child(black_box(&state), black_box(3)))
    });
    let big = vec![0x5Au8; 4096];
    c.bench_function("sha1/4KiB", |b| b.iter(|| sha1(black_box(&big))));
}

criterion_group!(
    benches,
    bench_stealval,
    bench_steal_half,
    bench_task_codec,
    bench_sha1
);
criterion_main!(benches);
