//! Table 2: benchmarking workload characteristics — total tasks,
//! average task time, and task size — for the paper's configurations
//! and for the scaled configurations this reproduction runs.

use sws_bench::banner;
use sws_workloads::bpc::BpcParams;
use sws_workloads::uts::UtsParams;

fn main() {
    banner("Table 2", "benchmarking workload characteristics");
    println!(
        "{:<28} {:>18} {:>16} {:>10}",
        "benchmark", "total tasks", "avg task time", "task size"
    );

    // The paper's configurations (reported, not executed here — the
    // BPC figure is closed-form, the UTS T1WL count is the paper's).
    let bpc = BpcParams::paper();
    println!(
        "{:<28} {:>18} {:>13.2} ms {:>8} B   (paper §5.2.1)",
        "BPC (paper)",
        bpc.total_tasks(),
        bpc.avg_task_ns() / 1e6,
        32
    );
    println!(
        "{:<28} {:>18} {:>13.5} ms {:>8} B   (paper Table 2, T1WL)",
        "UTS (paper, T1WL)", 270_751_679_750u64, 0.00011, 48
    );

    // The scaled configurations the figures in this repo actually run.
    let bpc_s = BpcParams::scaled(128, 48);
    println!(
        "{:<28} {:>18} {:>13.2} ms {:>8} B   (this repo, Fig 7)",
        "BPC (scaled)",
        bpc_s.total_tasks(),
        bpc_s.avg_task_ns() / 1e6,
        32
    );
    for depth in [10, 12, 14] {
        let p = UtsParams::geo_small(depth);
        let s = p.sequential_count();
        println!(
            "{:<28} {:>18} {:>13.5} ms {:>8} B   (this repo, depth {})",
            format!("UTS (scaled, d={depth})"),
            s.nodes,
            p.node_ns as f64 / 1e6,
            48,
            depth
        );
    }
}
