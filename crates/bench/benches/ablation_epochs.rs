//! Ablation (§4.2): completion epochs (Fig. 4 layout) vs the initial
//! single-epoch design (Fig. 3 `ValidBit` layout).
//!
//! With one epoch, an acquire/release must wait for every in-flight
//! steal to finish before reusing the completion array; with two
//! epochs the owner re-advertises immediately. The paper's claim: "the
//! use of two completion epochs was sufficient to avoid polling".
//! This harness reports owner poll counts and makespans for both
//! layouts on the steal-heavy UTS workload.

use sws_bench::{banner, ms, pe_sweep, runs_per_config};
use sws_core::stealval::Layout;
use sws_core::QueueConfig;
use sws_sched::{run_workload, QueueKind, RunConfig, SchedConfig};
use sws_workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    let params = UtsParams::geo_small(11);
    let oracle = params.sequential_count();
    banner(
        "Ablation §4.2",
        &format!(
            "completion epochs vs single-epoch (Fig.3) — UTS {} nodes",
            oracle.nodes
        ),
    );
    let runs = runs_per_config().max(1);
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "PEs", "layout", "makespan(ms)", "owner polls", "acquires", "releases"
    );
    for &p in &pe_sweep() {
        for (label, layout) in [("epochs", Layout::Epochs), ("validbit", Layout::ValidBit)] {
            let mut mk = 0.0;
            let (mut polls, mut acqs, mut rels) = (0u64, 0u64, 0u64);
            for r in 0..runs {
                let queue = QueueConfig::new(16384, 48).with_layout(layout);
                let sched =
                    SchedConfig::new(QueueKind::Sws, queue).with_seed(0xE0C4 + r as u64 * 7919);
                let report = run_workload(&RunConfig::new(p, sched), &UtsWorkload::new(params));
                assert_eq!(report.total_tasks(), oracle.nodes);
                mk += ms(report.makespan_ns) / runs as f64;
                polls += report.workers.iter().map(|w| w.queue.owner_polls).sum::<u64>();
                acqs += report.workers.iter().map(|w| w.queue.acquires).sum::<u64>();
                rels += report.workers.iter().map(|w| w.queue.releases).sum::<u64>();
            }
            println!(
                "{:>6} {:>10} {:>14.3} {:>14} {:>14} {:>14}",
                p,
                label,
                mk,
                polls / runs as u64,
                acqs / runs as u64,
                rels / runs as u64
            );
        }
    }
    println!();
    println!("expected: the single-epoch layout polls during split-point updates");
    println!("(owner polls > 0) where the two-epoch layout avoids it (§4.2).");
}
