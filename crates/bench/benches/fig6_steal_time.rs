//! Figure 6: steal operation times for SDC and SWS vs. steal volume,
//! with 24-byte and 192-byte tasks.
//!
//! A two-PE world: PE 0 advertises `2·V` tasks so the thief's steal-half
//! claims exactly `V`; PE 1 performs one steal and we read its cost off
//! the virtual clock. Deterministic — no averaging needed — with the
//! EDR-InfiniBand-like network model.
//!
//! Expected shape (paper §5.1): at small volumes SWS ≈ half of SDC
//! (2 blocking round trips vs 5); as the volume grows the task-copy
//! bytes dominate both and the curves converge.

use sws_bench::banner;
use sws_core::{QueueConfig, SdcQueue, StealOutcome, StealQueue, SwsQueue};
use sws_sched::QueueKind;
use sws_shmem::{run_world, ShmemCtx, WorldConfig};
use sws_workloads::synth::sized_task;

/// One steal of volume `vol`: returns the thief's virtual steal cost in ns.
fn steal_cost_ns(kind: QueueKind, task_bytes: usize, vol: usize) -> u64 {
    let capacity = (4 * vol + 4).next_power_of_two().max(64);
    let cfg = QueueConfig::new(capacity, task_bytes);
    let heap = cfg.buffer_words() + cfg.capacity + 8192;
    let out = run_world(WorldConfig::virtual_time(2, heap), |ctx| {
        let mut q: Box<dyn StealQueue + '_> = match kind {
            QueueKind::Sdc => Box::new(SdcQueue::new(ctx, cfg)),
            QueueKind::Sws => Box::new(SwsQueue::new(ctx, cfg)),
        };
        run_one(ctx, q.as_mut(), task_bytes, vol)
    })
    .expect("fig6 world");
    out.results[1]
}

fn run_one(ctx: &ShmemCtx, q: &mut dyn StealQueue, task_bytes: usize, vol: usize) -> u64 {
    if ctx.my_pe() == 0 {
        // Release exposes half the local portion, and the first steal
        // takes half of that: enqueue 4·vol ⇒ advertise 2·vol ⇒ steal vol.
        for i in 0..(4 * vol) as u64 {
            assert!(q.enqueue(&sized_task(i, task_bytes)));
        }
        assert!(q.release(), "advertise 2·vol so the first steal takes vol");
    }
    ctx.barrier_all();
    let mut cost = 0;
    if ctx.my_pe() == 1 {
        let t0 = ctx.now_ns();
        match q.steal_from(0) {
            StealOutcome::Got { tasks } => {
                assert_eq!(tasks as usize, vol, "steal-half of 2·vol");
            }
            other => panic!("expected a successful steal, got {other:?}"),
        }
        cost = ctx.now_ns() - t0;
    }
    ctx.barrier_all();
    cost
}

fn main() {
    banner(
        "Figure 6",
        "steal operation time vs steal volume (24 B and 192 B tasks)",
    );
    let volumes: Vec<usize> = (0..15).map(|i| 1usize << i).collect(); // 1..16384
    println!(
        "{:>8} {:>12} {:>12} {:>7} {:>12} {:>12} {:>7}",
        "volume", "SDC24(µs)", "SWS24(µs)", "ratio", "SDC192(µs)", "SWS192(µs)", "ratio"
    );
    for &v in &volumes {
        let mut row = Vec::new();
        for bytes in [24, 192] {
            let sdc = steal_cost_ns(QueueKind::Sdc, bytes, v);
            let sws = steal_cost_ns(QueueKind::Sws, bytes, v);
            row.push((sdc, sws));
        }
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>7.2} {:>12.2} {:>12.2} {:>7.2}",
            v,
            row[0].0 as f64 / 1e3,
            row[0].1 as f64 / 1e3,
            row[0].0 as f64 / row[0].1 as f64,
            row[1].0 as f64 / 1e3,
            row[1].1 as f64 / 1e3,
            row[1].0 as f64 / row[1].1 as f64,
        );
    }
    println!();
    println!("expected shape: ratio ≈ 2.5 at volume 1 (5 vs 2 blocking RTTs),");
    println!("converging toward 1 as task-copy bytes dominate (paper §5.1).");
}
