//! Figure 7 (a–f): the Bouncing Producer-Consumer benchmark across PE
//! counts, SDC vs SWS.
//!
//! The paper runs 8,192 consumers per producer at depth 500 with 5 ms
//! tasks on up to 2,112 cores; this harness keeps the workload *shape*
//! (coarse consumers ≫ steal latency, producers bouncing along the steal
//! side) at in-process scale: `128·scale` consumers per producer, depth
//! 48, 500 µs consumers (see DESIGN.md §2). Override the sweep with
//! `SWS_PES`, the run count with `SWS_RUNS`, the size with `SWS_SCALE`.
//!
//! Expected shapes (paper §5.3.1): SDC ≈ SWS in raw runtime at small PE
//! counts (computation dominates), SWS pulling slightly ahead as the
//! sweep widens (7a/7b); both efficient (7c); tiny run-to-run variation
//! (7d); SWS steal time flat vs SDC's growth (7e); SWS search time lower
//! (7f).

use sws_bench::{scale, six_panels};
use sws_core::QueueConfig;
use sws_workloads::bpc::{BpcParams, BpcWorkload};

fn main() {
    let consumers = ((128.0 * scale()) as u32).max(8);
    let depth = 48;
    let params = BpcParams::scaled(consumers, depth);
    six_panels(
        "Fig7",
        &format!(
            "BPC: {depth} producers × {consumers} consumers, {} total tasks, avg task {:.2} ms",
            params.total_tasks(),
            params.avg_task_ns() / 1e6
        ),
        QueueConfig::new(8192, 32),
        move |_run| BpcWorkload::new(params),
    );
}
