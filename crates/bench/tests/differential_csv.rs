//! Byte-identity of experiment artifacts across gate implementations.
//!
//! Renders the Fig. 8-style CSV for a small UTS sweep under both
//! virtual-time gates and asserts the artifacts are byte-identical —
//! the safe-window engine must not perturb a single digit of any
//! figure CSV. Wall-clock companions (`*_wall.csv`) are exempt.

use sws_bench::{csv_for, run_series_gated, run_series_instrumented, summarize, wall_csv_for, Cell};
use sws_core::QueueConfig;
use sws_sched::QueueKind;
use sws_shmem::GateMode;
use sws_workloads::uts::{UtsParams, UtsWorkload};

/// A miniature Fig. 8 sweep: both systems at each width, summarized
/// exactly the way `six_panels` builds figure cells.
fn sweep(gate: GateMode) -> Vec<(usize, Cell, Cell)> {
    let queue = QueueConfig::new(1024, 48);
    let params = UtsParams::geo_small(7);
    [2usize, 4]
        .iter()
        .map(|&pes| {
            let sdc = run_series_gated(QueueKind::Sdc, pes, queue, 2, gate, |_r| {
                UtsWorkload::new(params)
            });
            let sws = run_series_gated(QueueKind::Sws, pes, queue, 2, gate, |_r| {
                UtsWorkload::new(params)
            });
            (pes, summarize(&sdc), summarize(&sws))
        })
        .collect()
}

#[test]
fn figure_csv_is_byte_identical_across_gates() {
    let old = csv_for(&sweep(GateMode::HandoffPerOp));
    let new = csv_for(&sweep(GateMode::SafeWindow));
    assert!(!old.is_empty() && old.lines().count() == 1 + 2 * 2);
    assert_eq!(old, new, "figure CSV must not depend on the gate");

    // And the artifact on disk round-trips the same bytes.
    let dir = std::path::Path::new("../../target/experiments");
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("differential_check.csv");
    std::fs::write(&path, &new).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), new.as_bytes());
}

#[test]
fn wall_csv_carries_engine_counters() {
    let cells = sweep(GateMode::SafeWindow);
    let wall = wall_csv_for(&cells);
    let mut lines = wall.lines();
    assert_eq!(
        lines.next().unwrap(),
        "pes,system,wall_ms,engine_fast_ops,engine_slow_ops,engine_windows,engine_gate_wait_ns"
    );
    // Every data row reports a live engine: some ops were gated.
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 7, "malformed row: {line}");
        let fast: u64 = cols[3].parse().unwrap();
        let slow: u64 = cols[4].parse().unwrap();
        assert!(fast + slow > 0, "no gated ops in row: {line}");
    }
}

#[test]
fn csv_rows_are_deterministic_across_reruns() {
    let a = csv_for(&sweep(GateMode::SafeWindow));
    let b = csv_for(&sweep(GateMode::SafeWindow));
    assert_eq!(a, b, "rerun with identical seeds must be byte-identical");
}

/// Arming the full telemetry stack (event tracing + per-op protocol
/// capture) must not perturb a single digit of the figure CSV: same
/// seeds, same cells, byte-identical artifact.
#[test]
fn figure_csv_is_byte_identical_with_telemetry_armed() {
    let queue = QueueConfig::new(1024, 48);
    let params = UtsParams::geo_small(7);
    let instrumented: Vec<(usize, Cell, Cell)> = [2usize, 4]
        .iter()
        .map(|&pes| {
            let sdc = run_series_instrumented(QueueKind::Sdc, pes, queue, 2, |_r| {
                UtsWorkload::new(params)
            });
            let sws = run_series_instrumented(QueueKind::Sws, pes, queue, 2, |_r| {
                UtsWorkload::new(params)
            });
            // The armed runs must actually be capturing.
            assert!(!sdc[0].proto_trace().is_empty());
            assert!(!sws[0].proto_trace().is_empty());
            (pes, summarize(&sdc), summarize(&sws))
        })
        .collect();
    let disarmed = csv_for(&sweep(GateMode::default()));
    assert_eq!(
        csv_for(&instrumented),
        disarmed,
        "telemetry must be pure observation"
    );
}
