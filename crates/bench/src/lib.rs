//! Shared plumbing for the experiment harnesses in `benches/`.
//!
//! Every bench target regenerates one table or figure of the paper (see
//! DESIGN.md §4 for the index) and prints the same rows/series the paper
//! reports. Sweeps are configurable through environment variables:
//!
//! * `SWS_PES`   — comma-separated PE counts (default `2,4,8,16,32,64`)
//! * `SWS_RUNS`  — runs per configuration for variation studies (default 3)
//! * `SWS_SCALE` — workload scale factor (default 1)

use sws_core::QueueConfig;
use sws_sched::{QueueKind, RunConfig, RunReport, SchedConfig, Workload};
use sws_shmem::{EngineStats, GateMode};

/// PE counts to sweep (env `SWS_PES`).
pub fn pe_sweep() -> Vec<usize> {
    match std::env::var("SWS_PES") {
        Ok(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("SWS_PES must be integers"))
            .collect(),
        Err(_) => vec![2, 4, 8, 16, 32, 64],
    }
}

/// Runs per configuration (env `SWS_RUNS`).
pub fn runs_per_config() -> usize {
    std::env::var("SWS_RUNS")
        .ok()
        .map(|s| s.parse().expect("SWS_RUNS must be an integer"))
        .unwrap_or(3)
}

/// Workload scale factor (env `SWS_SCALE`).
pub fn scale() -> f64 {
    std::env::var("SWS_SCALE")
        .ok()
        .map(|s| s.parse().expect("SWS_SCALE must be a number"))
        .unwrap_or(1.0)
}

/// Run a workload `runs` times on `n_pes` PEs under `kind` with distinct
/// seeds, returning the reports.
pub fn run_series<W: Workload>(
    kind: QueueKind,
    n_pes: usize,
    queue: QueueConfig,
    runs: usize,
    workload_for: impl FnMut(u64) -> W,
) -> Vec<RunReport> {
    run_series_gated(kind, n_pes, queue, runs, GateMode::default(), workload_for)
}

/// As [`run_series`], but selecting the virtual-time gate — used by the
/// differential determinism suite to prove both gates realize the same
/// experiment artifacts.
pub fn run_series_gated<W: Workload>(
    kind: QueueKind,
    n_pes: usize,
    queue: QueueConfig,
    runs: usize,
    gate: GateMode,
    mut workload_for: impl FnMut(u64) -> W,
) -> Vec<RunReport> {
    (0..runs)
        .map(|r| {
            let sched = SchedConfig::new(kind, queue).with_seed(0xBA5E + r as u64 * 7919);
            let cfg = RunConfig::new(n_pes, sched).with_gate(gate);
            sws_sched::run_workload(&cfg, &workload_for(r as u64))
        })
        .collect()
}

/// As [`run_series`], but with the full telemetry stack armed: event
/// tracing on and per-op protocol capture enabled. Used by the
/// armed-vs-disarmed differential suite to prove telemetry is pure
/// observation — the figure CSVs must come out byte-identical.
pub fn run_series_instrumented<W: Workload>(
    kind: QueueKind,
    n_pes: usize,
    queue: QueueConfig,
    runs: usize,
    mut workload_for: impl FnMut(u64) -> W,
) -> Vec<RunReport> {
    (0..runs)
        .map(|r| {
            let mut sched = SchedConfig::new(kind, queue).with_seed(0xBA5E + r as u64 * 7919);
            sched.trace = true;
            let cfg = RunConfig::new(n_pes, sched)
                .with_gate(GateMode::default())
                .with_capture_proto();
            sws_sched::run_workload(&cfg, &workload_for(r as u64))
        })
        .collect()
}

/// Standard banner for a figure harness.
pub fn banner(fig: &str, what: &str) {
    println!("================================================================");
    println!("{fig}: {what}");
    println!("================================================================");
}

/// Format ns as ms.
pub fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Geometric mean of `xs` (for summarizing ratios).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

// ---------------------------------------------------------------------
// Six-panel scaling harness (Figures 7 and 8)
// ---------------------------------------------------------------------

/// Aggregates over the runs of one (system, PE-count) cell.
pub struct Cell {
    /// Mean makespan, ns.
    pub makespan_ns: f64,
    /// Population SD of makespans as % of the mean (panel d).
    pub sd_pct: f64,
    /// (max−min) range as % of the mean (panel d).
    pub range_pct: f64,
    /// Mean throughput, tasks/s (panel a).
    pub throughput: f64,
    /// Mean parallel efficiency (panel c).
    pub efficiency: f64,
    /// Mean total steal time, ns (panel e).
    pub steal_ns: f64,
    /// Mean total search time, ns (panel f).
    pub search_ns: f64,
    /// Mean dissemination time, ns: virtual time until the *last* PE
    /// first obtained work (the abstract's "task acquisition time").
    pub dissemination_ns: f64,
    /// Mean simulation wall time, ms. Wall-clock (nondeterministic) —
    /// reported in the companion `*_wall.csv`, never in the figure CSV.
    pub wall_ms: f64,
    /// Summed engine counters over the runs (wall-clock `gate_wait_ns`
    /// included) — companion CSV only, like `wall_ms`.
    pub engine: EngineStats,
}

/// Summarize a series of runs of one configuration.
pub fn summarize(reports: &[RunReport]) -> Cell {
    let makespans: Vec<f64> = reports.iter().map(|r| r.makespan_ns as f64).collect();
    let n = makespans.len() as f64;
    let mean = makespans.iter().sum::<f64>() / n;
    let var = makespans.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    let min = makespans.iter().cloned().fold(f64::MAX, f64::min);
    let max = makespans.iter().cloned().fold(0.0, f64::max);
    Cell {
        makespan_ns: mean,
        sd_pct: 100.0 * sd / mean,
        range_pct: 100.0 * (max - min) / mean,
        throughput: reports.iter().map(|r| r.throughput_per_s()).sum::<f64>() / n,
        efficiency: reports.iter().map(|r| r.parallel_efficiency()).sum::<f64>() / n,
        steal_ns: reports.iter().map(|r| r.total_steal_ns() as f64).sum::<f64>() / n,
        search_ns: reports.iter().map(|r| r.total_search_ns() as f64).sum::<f64>() / n,
        dissemination_ns: reports
            .iter()
            .map(|r| {
                r.workers
                    .iter()
                    .map(|w| w.first_work_ns)
                    .max()
                    .unwrap_or(0) as f64
            })
            .sum::<f64>()
            / n,
        wall_ms: reports.iter().map(|r| r.wall_ms as f64).sum::<f64>() / n,
        engine: {
            let mut e = EngineStats::default();
            for r in reports {
                e.merge(&r.total_engine());
            }
            e
        },
    }
}

/// Run the full six-panel sweep for one workload family and print the
/// panels in the paper's order.
pub fn six_panels<W: Workload>(
    fig: &str,
    name: &str,
    queue: QueueConfig,
    mut workload_for: impl FnMut(u64) -> W,
) {
    let pes = pe_sweep();
    let runs = runs_per_config();
    banner(fig, &format!("{name} — panels a–f, {runs} runs per point"));

    let mut cells: Vec<(usize, Cell, Cell)> = Vec::new();
    for &p in &pes {
        let sdc = summarize(&run_series(QueueKind::Sdc, p, queue, runs, &mut workload_for));
        let sws = summarize(&run_series(QueueKind::Sws, p, queue, runs, &mut workload_for));
        eprintln!("  swept {p} PEs");
        cells.push((p, sdc, sws));
    }

    println!("\n({fig}a) performance — tasks per second");
    println!("{:>6} {:>16} {:>16}", "PEs", "SDC", "SWS");
    for (p, sdc, sws) in &cells {
        println!("{:>6} {:>16.0} {:>16.0}", p, sdc.throughput, sws.throughput);
    }

    println!("\n({fig}b) relative runtime of SDC vs SWS — SDC/SWS × 100 % (>100 ⇒ SWS faster)");
    println!("{:>6} {:>12}", "PEs", "SDC/SWS %");
    for (p, sdc, sws) in &cells {
        println!("{:>6} {:>12.1}", p, 100.0 * sdc.makespan_ns / sws.makespan_ns);
    }

    println!("\n({fig}c) parallel efficiency relative to ideal execution — %");
    println!("{:>6} {:>10} {:>10}", "PEs", "SDC", "SWS");
    for (p, sdc, sws) in &cells {
        println!(
            "{:>6} {:>10.1} {:>10.1}",
            p,
            100.0 * sdc.efficiency,
            100.0 * sws.efficiency
        );
    }

    println!("\n({fig}d) variation across runs — SD and range as % of mean runtime");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "PEs", "SDC-SD%", "SWS-SD%", "SDC-Range%", "SWS-Range%"
    );
    for (p, sdc, sws) in &cells {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            p, sdc.sd_pct, sws.sd_pct, sdc.range_pct, sws.range_pct
        );
    }

    println!("\n({fig}e) total steal operation time — ms");
    println!("{:>6} {:>12} {:>12} {:>8}", "PEs", "SDC", "SWS", "ratio");
    for (p, sdc, sws) in &cells {
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>8.2}",
            p,
            sdc.steal_ns / 1e6,
            sws.steal_ns / 1e6,
            sdc.steal_ns / sws.steal_ns.max(1.0)
        );
    }

    println!("\n({fig}f) total search time — ms");
    println!("{:>6} {:>12} {:>12} {:>8}", "PEs", "SDC", "SWS", "ratio");
    for (p, sdc, sws) in &cells {
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>8.2}",
            p,
            sdc.search_ns / 1e6,
            sws.search_ns / 1e6,
            sdc.search_ns / sws.search_ns.max(1.0)
        );
    }

    println!("\n({fig}+) work dissemination — ms until the last PE first obtained work");
    println!("(the abstract's \"task acquisition time\"; not a separate paper figure)");
    println!("{:>6} {:>12} {:>12} {:>8}", "PEs", "SDC", "SWS", "ratio");
    for (p, sdc, sws) in &cells {
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>8.2}",
            p,
            sdc.dissemination_ns / 1e6,
            sws.dissemination_ns / 1e6,
            sdc.dissemination_ns / sws.dissemination_ns.max(1.0)
        );
    }

    write_csv(fig, &cells);
    println!();
}

/// Render the deterministic figure CSV for a sweep. Every column is a
/// pure function of virtual-time results, so two gates (or two identical
/// reruns) must produce byte-identical output — the differential
/// determinism suite asserts exactly that.
pub fn csv_for(cells: &[(usize, Cell, Cell)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "pes,system,makespan_ns,sd_pct,range_pct,throughput,efficiency,steal_ns,search_ns,dissemination_ns\n",
    );
    for (p, sdc, sws) in cells {
        for (name, c) in [("SDC", sdc), ("SWS", sws)] {
            let _ = writeln!(
                out,
                "{p},{name},{},{},{},{},{},{},{},{}",
                c.makespan_ns,
                c.sd_pct,
                c.range_pct,
                c.throughput,
                c.efficiency,
                c.steal_ns,
                c.search_ns,
                c.dissemination_ns
            );
        }
    }
    out
}

/// Render the wall-clock companion CSV: simulation wall time and engine
/// gate counters per cell. Nondeterministic by nature (wall time), so it
/// lives in a separate `*_wall.csv` and is excluded from byte-identity
/// checks.
pub fn wall_csv_for(cells: &[(usize, Cell, Cell)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "pes,system,wall_ms,engine_fast_ops,engine_slow_ops,engine_windows,engine_gate_wait_ns\n",
    );
    for (p, sdc, sws) in cells {
        for (name, c) in [("SDC", sdc), ("SWS", sws)] {
            let _ = writeln!(
                out,
                "{p},{name},{},{},{},{},{}",
                c.wall_ms,
                c.engine.fast_ops,
                c.engine.slow_ops,
                c.engine.windows,
                c.engine.gate_wait_ns
            );
        }
    }
    out
}

/// Write the sweep as machine-readable CSVs under `target/experiments/`:
/// the deterministic figure CSV plus the wall-clock companion.
fn write_csv(fig: &str, cells: &[(usize, Cell, Cell)]) {
    use std::io::Write as _;
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{}.csv", fig.to_lowercase()));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(csv_for(cells).as_bytes());
        eprintln!("  wrote {}", path.display());
    }
    let wall_path = dir.join(format!("{}_wall.csv", fig.to_lowercase()));
    if let Ok(mut f) = std::fs::File::create(&wall_path) {
        let _ = f.write_all(wall_csv_for(cells).as_bytes());
        eprintln!("  wrote {}", wall_path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sweep_is_sorted() {
        if std::env::var("SWS_PES").is_err() {
            let pes = pe_sweep();
            assert!(pes.len() >= 4);
            assert!(pes.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn geomean_of_constant_is_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn ms_converts() {
        assert_eq!(ms(1_500_000), 1.5);
    }
}

