//! `sws-bench` — the pinned wall-clock trajectory harness.
//!
//! ```text
//! sws-bench wall [--quick] [--out FILE] [--runs N]
//! sws-bench validate FILE
//! ```
//!
//! `wall` runs a FIXED set of UTS/BPC configurations at 8/16/32/64
//! threads (`ExecMode::Threaded`, no latency injection) and emits a
//! schema-stable JSON document (`sws-bench-wall/v1`) designed to be
//! committed as `BENCH_<pr>.json` — one file per PR that claims a
//! wall-clock win, forming a perf trajectory over the repo's history.
//!
//! Each configuration is measured under three knob settings so a reader
//! can attribute the win:
//!
//! * `packed-spin`   — the pre-fix baseline: packed (word-granular) heap
//!   layout, eager completion signals, no oversubscription yield.
//! * `aligned-spin`  — the false-sharing fix alone: 128-byte-aligned
//!   heap regions and line-isolated queue control words.
//! * `aligned-yield-batch` — the full fix: aligned layout, the
//!   oversubscription yield hint, and batched completion puts.
//!
//! Wall-clock numbers are inherently machine- and load-dependent, so the
//! document records the machine shape (`hw_threads`) and CI treats the
//! *numbers* as non-blocking; only the schema is validated (blocking)
//! via the `validate` subcommand.
//!
//! The virtual-time figures are untouched by any of these knobs — the
//! differential suite pins their byte-identity separately.

use std::time::Instant;

use sws_bench::ms;
use sws_core::QueueConfig;
use sws_sched::{run_workload_mode, QueueKind, RunConfig, RunReport, SchedConfig};
use sws_shmem::{ExecMode, HeapLayout};
use sws_workloads::bpc::{BpcParams, BpcWorkload};
use sws_workloads::uts::{UtsParams, UtsWorkload};

/// One knob setting measured per configuration.
struct Variant {
    name: &'static str,
    layout: HeapLayout,
    oversub_yield: bool,
    comp_batch: usize,
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "packed-spin",
        layout: HeapLayout::Packed,
        oversub_yield: false,
        comp_batch: 0,
    },
    Variant {
        name: "aligned-spin",
        layout: HeapLayout::Aligned,
        oversub_yield: false,
        comp_batch: 0,
    },
    Variant {
        name: "aligned-yield-batch",
        layout: HeapLayout::Aligned,
        oversub_yield: true,
        comp_batch: 8,
    },
];

/// The pinned workloads. Scales are fixed forever (that is the point of
/// a trajectory file); `--quick` shrinks them for CI smoke only.
enum Bench {
    Uts { depth: u32 },
    Bpc { consumers: u32, depth: u32 },
}

impl Bench {
    fn label(&self) -> String {
        match self {
            Bench::Uts { depth } => format!("uts-geo-d{depth}"),
            Bench::Bpc { consumers, depth } => format!("bpc-c{consumers}-d{depth}"),
        }
    }

    fn run(&self, cfg: &RunConfig) -> RunReport {
        let mode = ExecMode::Threaded {
            inject_latency: false,
        };
        match self {
            Bench::Uts { depth } => {
                let wl = UtsWorkload::new(UtsParams::geo_small(*depth));
                run_workload_mode(cfg, &wl, mode)
            }
            Bench::Bpc { consumers, depth } => {
                let wl = BpcWorkload::new(BpcParams::scaled(*consumers, *depth));
                run_workload_mode(cfg, &wl, mode)
            }
        }
    }
}

fn benches(quick: bool) -> Vec<Bench> {
    if quick {
        vec![
            Bench::Uts { depth: 6 },
            Bench::Bpc {
                consumers: 16,
                depth: 8,
            },
        ]
    } else {
        vec![
            Bench::Uts { depth: 7 },
            Bench::Bpc {
                consumers: 24,
                depth: 16,
            },
        ]
    }
}

fn pe_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![8]
    } else {
        vec![8, 16, 32, 64]
    }
}

struct VariantCell {
    name: &'static str,
    layout: HeapLayout,
    oversub_yield: bool,
    comp_batch: usize,
    wall_ms: Vec<f64>,
    tasks: u64,
}

impl VariantCell {
    fn min_ms(&self) -> f64 {
        self.wall_ms.iter().cloned().fold(f64::MAX, f64::min)
    }
}

struct ConfigCell {
    workload: String,
    system: &'static str,
    pes: usize,
    runs: usize,
    variants: Vec<VariantCell>,
}

impl ConfigCell {
    /// Pre-fix baseline over full fix, best-of-runs (>1 ⇒ fix faster).
    fn speedup(&self) -> f64 {
        let base = self.variants.first().map_or(0.0, |v| v.min_ms());
        let last = self.variants.last().map_or(0.0, |v| v.min_ms());
        if last > 0.0 {
            base / last
        } else {
            0.0
        }
    }
}

fn measure(bench: &Bench, system: QueueKind, pes: usize, runs: usize) -> ConfigCell {
    let sys_label = match system {
        QueueKind::Sws => "SWS",
        QueueKind::Sdc => "SDC",
    };
    let mut variants = Vec::new();
    for v in &VARIANTS {
        let mut wall_ms = Vec::new();
        let mut tasks = 0;
        for r in 0..runs {
            let queue = QueueConfig::new(16384, 48).with_comp_batch(v.comp_batch);
            let sched = SchedConfig::new(system, queue).with_seed(0xBA5E + r as u64 * 7919);
            let cfg = RunConfig::new(pes, sched)
                .with_heap_layout(v.layout)
                .with_oversub_yield(v.oversub_yield);
            let t0 = Instant::now();
            let report = bench.run(&cfg);
            wall_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            tasks = report.total_tasks();
        }
        eprintln!(
            "  {} {} pes={} {:<20} min {:.1} ms over {} runs",
            bench.label(),
            sys_label,
            pes,
            v.name,
            wall_ms.iter().cloned().fold(f64::MAX, f64::min),
            runs,
        );
        variants.push(VariantCell {
            name: v.name,
            layout: v.layout,
            oversub_yield: v.oversub_yield,
            comp_batch: v.comp_batch,
            wall_ms,
            tasks,
        });
    }
    ConfigCell {
        workload: bench.label(),
        system: sys_label,
        pes,
        runs,
        variants,
    }
}

fn render_json(cells: &[ConfigCell], quick: bool) -> String {
    use std::fmt::Write as _;
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"sws-bench-wall/v1\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"machine\": {{ \"hw_threads\": {hw}, \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(out, "  \"mode\": \"threaded\",");
    let _ = writeln!(out, "  \"configs\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"workload\": \"{}\",", c.workload);
        let _ = writeln!(out, "      \"system\": \"{}\",", c.system);
        let _ = writeln!(out, "      \"pes\": {},", c.pes);
        let _ = writeln!(out, "      \"runs\": {},", c.runs);
        let _ = writeln!(out, "      \"speedup\": {:.4},", c.speedup());
        let _ = writeln!(out, "      \"variants\": [");
        for (j, v) in c.variants.iter().enumerate() {
            let layout = match v.layout {
                HeapLayout::Aligned => "aligned",
                HeapLayout::Packed => "packed",
            };
            let walls: Vec<String> = v.wall_ms.iter().map(|w| format!("{w:.3}")).collect();
            let _ = write!(
                out,
                "        {{ \"name\": \"{}\", \"heap_layout\": \"{}\", \
                 \"oversub_yield\": {}, \"comp_batch\": {}, \"tasks\": {}, \
                 \"wall_ms\": [{}], \"wall_ms_min\": {:.3} }}",
                v.name,
                layout,
                v.oversub_yield,
                v.comp_batch,
                v.tasks,
                walls.join(", "),
                v.min_ms(),
            );
            let _ = writeln!(out, "{}", if j + 1 < c.variants.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Schema validation for a `sws-bench-wall/v1` document. Returns every
/// problem found (empty ⇒ valid). Numbers are NOT judged here — wall
/// clock is machine-dependent; only structure is binding.
fn validate(text: &str) -> Vec<String> {
    use sws_obs::json::Json;
    let mut errs = Vec::new();
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if doc.get("schema").and_then(|s| s.as_str()) != Some("sws-bench-wall/v1") {
        errs.push("schema must be \"sws-bench-wall/v1\"".into());
    }
    let hw = doc
        .get("machine")
        .and_then(|m| m.get("hw_threads"))
        .and_then(|v| v.as_f64());
    if !hw.is_some_and(|h| h >= 1.0) {
        errs.push("machine.hw_threads must be a number >= 1".into());
    }
    let Some(configs) = doc.get("configs").and_then(|c| c.as_arr()) else {
        errs.push("configs must be an array".into());
        return errs;
    };
    if configs.is_empty() {
        errs.push("configs must be non-empty".into());
    }
    for (i, c) in configs.iter().enumerate() {
        let at = |what: &str| format!("configs[{i}]: {what}");
        if c.get("workload").and_then(|w| w.as_str()).is_none() {
            errs.push(at("missing workload"));
        }
        let sys = c.get("system").and_then(|s| s.as_str());
        if !matches!(sys, Some("SWS") | Some("SDC")) {
            errs.push(at("system must be SWS or SDC"));
        }
        let pes = c.get("pes").and_then(|p| p.as_f64());
        if !pes.is_some_and(|p| [8.0, 16.0, 32.0, 64.0].contains(&p)) {
            errs.push(at("pes must be one of 8/16/32/64"));
        }
        if c.get("speedup").and_then(|s| s.as_f64()).is_none() {
            errs.push(at("missing speedup"));
        }
        let Some(variants) = c.get("variants").and_then(|v| v.as_arr()) else {
            errs.push(at("variants must be an array"));
            continue;
        };
        let names: Vec<_> = variants
            .iter()
            .filter_map(|v| v.get("name").and_then(|n| n.as_str()))
            .collect();
        for required in ["packed-spin", "aligned-yield-batch"] {
            if !names.contains(&required) {
                errs.push(at(&format!("missing variant {required}")));
            }
        }
        for (j, v) in variants.iter().enumerate() {
            let vat = |what: &str| format!("configs[{i}].variants[{j}]: {what}");
            let walls = v.get("wall_ms").and_then(|w| w.as_arr());
            match walls {
                Some(w) if !w.is_empty() => {
                    if !w.iter().all(|x| x.as_f64().is_some_and(|f| f > 0.0)) {
                        errs.push(vat("wall_ms entries must be positive numbers"));
                    }
                }
                _ => errs.push(vat("wall_ms must be a non-empty array")),
            }
            if v.get("heap_layout")
                .and_then(|l| l.as_str())
                .is_none_or(|l| l != "aligned" && l != "packed")
            {
                errs.push(vat("heap_layout must be aligned|packed"));
            }
        }
    }
    errs
}

fn usage() -> ! {
    eprintln!("usage: sws-bench wall [--quick] [--out FILE] [--runs N]");
    eprintln!("       sws-bench validate FILE");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("wall") => {
            let mut quick = false;
            let mut out_path: Option<String> = None;
            let mut runs = 3usize;
            let mut it = args[1..].iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--quick" => quick = true,
                    "--out" => out_path = Some(it.next().cloned().unwrap_or_else(|| usage())),
                    "--runs" => {
                        runs = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            if quick {
                runs = runs.min(1);
            }
            let t0 = Instant::now();
            let mut cells = Vec::new();
            for bench in &benches(quick) {
                for &pes in &pe_counts(quick) {
                    for system in [QueueKind::Sws, QueueKind::Sdc] {
                        cells.push(measure(bench, system, pes, runs));
                    }
                }
            }
            let doc = render_json(&cells, quick);
            let errs = validate(&doc);
            assert!(errs.is_empty(), "self-emitted JSON failed schema: {errs:?}");
            match &out_path {
                Some(p) => {
                    std::fs::write(p, &doc).unwrap_or_else(|e| {
                        eprintln!("cannot write {p}: {e}");
                        std::process::exit(1);
                    });
                    eprintln!("wrote {p} ({} bytes)", doc.len());
                }
                None => print!("{doc}"),
            }
            eprintln!("total bench wall time: {:.1} ms", ms(t0.elapsed().as_nanos() as u64));
        }
        Some("validate") => {
            let Some(path) = args.get(1) else { usage() };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let errs = validate(&text);
            if errs.is_empty() {
                println!("{path}: valid sws-bench-wall/v1 document");
            } else {
                for e in &errs {
                    eprintln!("{path}: {e}");
                }
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
