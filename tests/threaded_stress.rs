//! Real-concurrency stress: the identical queue and scheduler code runs
//! in threaded mode (no virtual-time serialization) — racing CPU atomics,
//! nondeterministic interleavings — and must still conserve every task.

use sws::prelude::*;
use sws::shmem::ExecMode;
use sws::workloads::uts::{UtsParams, UtsWorkload};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn threaded_uts_conserves_nodes_on_both_queues() {
    let params = UtsParams::geo_small(8);
    let expected = params.sequential_count().nodes;
    for kind in [QueueKind::Sws, QueueKind::Sdc] {
        for round in 0..3 {
            let w = UtsWorkload::new(params);
            let sched = SchedConfig::new(kind, QueueConfig::new(2048, 48))
                .with_seed(round * 31 + 1);
            let cfg = RunConfig::new(4, sched);
            let report = sws::sched::runner::run_workload_mode(
                &cfg,
                &w,
                ExecMode::Threaded {
                    inject_latency: false,
                },
            );
            assert_eq!(
                report.total_tasks(),
                expected,
                "{kind:?} threaded round {round}"
            );
            assert_eq!(w.nodes_visited(), expected);
        }
    }
}

#[test]
fn threaded_steal_storm_no_task_lost_or_duplicated() {
    // A dedicated storm: PE 0 repeatedly releases batches while 7 thieves
    // hammer it concurrently with real atomics. Tags must partition.
    let out = run_world(WorldConfig::threaded(8, 1 << 16), |ctx| {
        let mut q = SwsQueue::new(ctx, QueueConfig::new(1024, 24));
        let rounds = 20u64;
        let batch = 96u64;
        let mut got: Vec<u64> = Vec::new();
        for r in 0..rounds {
            if ctx.my_pe() == 0 {
                for i in 0..batch {
                    let tag = r * batch + i;
                    while !q.enqueue(&TaskDescriptor::new(1, &tag.to_le_bytes())) {
                        q.progress();
                    }
                }
                while !q.release() {
                    // Shared portion not fully claimed yet; wait for the
                    // thieves to drain it.
                    q.progress();
                    std::hint::spin_loop();
                }
            }
            ctx.barrier_all();
            // Everyone (including the owner, via acquire) pulls work.
            loop {
                if ctx.my_pe() == 0 {
                    let mut any = false;
                    while let Some(t) = q.pop_local() {
                        got.push(u64::from_le_bytes(t.payload().try_into().unwrap()));
                        any = true;
                    }
                    if !any && !q.acquire() {
                        break;
                    }
                } else {
                    match q.steal_from(0) {
                        StealOutcome::Got { .. } => {
                            while let Some(t) = q.pop_local() {
                                got.push(u64::from_le_bytes(
                                    t.payload().try_into().unwrap(),
                                ));
                            }
                        }
                        StealOutcome::Empty => break,
                        // Failed/Aborted cannot occur without a fault
                        // plan; retrying keeps the stress loop total.
                        StealOutcome::Closed
                        | StealOutcome::Failed { .. }
                        | StealOutcome::Aborted { .. } => std::hint::spin_loop(),
                    }
                }
            }
            q.flush_completions();
            ctx.barrier_all();
        }
        got
    })
    .unwrap();
    let mut all: Vec<u64> = out.results.into_iter().flatten().collect();
    all.sort_unstable();
    let expect: Vec<u64> = (0..20 * 96).collect();
    assert_eq!(all.len(), expect.len(), "count mismatch");
    assert_eq!(all, expect, "tags must partition exactly");
}

#[test]
fn threaded_concurrent_atomic_counters_under_contention() {
    // Sanity of the substrate itself under real contention: wrapping
    // decrements, swaps and cswaps mixed from 8 threads.
    let hits = Arc::new(AtomicU64::new(0));
    let hits2 = Arc::clone(&hits);
    let out = run_world(WorldConfig::threaded(8, 256), move |ctx| {
        let a = ctx.alloc_words(2);
        for i in 0..200u64 {
            ctx.atomic_fetch_add(0, a, 1);
            if i % 3 == 0 {
                ctx.atomic_fetch_add(0, a, u64::MAX); // -1
                ctx.atomic_fetch_add(0, a, 1);
            }
            // cswap ping-pong on the second word.
            let me = ctx.my_pe() as u64 + 1;
            if ctx.atomic_compare_swap(0, a.offset(1), 0, me) == 0 {
                hits2.fetch_add(1, Ordering::Relaxed);
                ctx.atomic_set(0, a.offset(1), 0);
            }
        }
        ctx.barrier_all();
        ctx.atomic_fetch(0, a)
    })
    .unwrap();
    assert!(out.results.iter().all(|&v| v == 8 * 200));
    assert!(hits.load(Ordering::Relaxed) > 0, "cswap section entered");
}

#[test]
fn handler_panic_poisons_the_world_cleanly() {
    // A task handler panicking on one PE must not deadlock the other
    // PEs (they block in gates/barriers) — the world poisons and the
    // error surfaces.
    use sws::sched::pool::TaskPool;

    let err = run_world(WorldConfig::virtual_time(3, 1 << 14), |ctx| {
        let mut reg: TaskRegistry<TaskCtx> = TaskRegistry::new();
        reg.register(1, |tctx, p| {
            if p[0] == 7 {
                panic!("deliberate handler failure");
            }
            tctx.compute(1_000);
            if p[0] > 0 {
                tctx.spawn(TaskDescriptor::new(1, &[p[0] - 1]));
            }
        });
        let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(128, 24));
        let mut pool = TaskPool::create(ctx, &reg, sched);
        if ctx.my_pe() == 0 {
            pool.add_task(TaskDescriptor::new(1, &[10]));
        }
        pool.process();
    })
    .unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("deliberate") || msg.contains("poisoned"),
        "unexpected error: {msg}"
    );
}

#[test]
fn corrupt_task_record_is_rejected_loudly() {
    // Decoding garbage must panic with a clear message rather than
    // silently executing a bogus task; the world reports it.
    let err = run_world(WorldConfig::virtual_time(1, 1 << 12), |ctx| {
        let _ = ctx; // substrate unused; decode failure is local
        let rec = [(250u64) << 16 | 9, 0]; // claims 250-byte payload in 2 words
        let _ = TaskDescriptor::decode(&rec);
    })
    .unwrap_err();
    assert!(format!("{err}").contains("corrupt task record"));
}
