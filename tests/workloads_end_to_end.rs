//! Cross-crate integration: the paper's workloads run through the full
//! stack (shmem substrate → queues → scheduler → workload) and match
//! their sequential oracles on both queue implementations.

use sws::prelude::*;
use sws::workloads::bpc::{BpcParams, BpcWorkload};
use sws::workloads::synth::FlatBag;
use sws::workloads::uts::{UtsParams, UtsWorkload};

fn cfg(kind: QueueKind, n_pes: usize, task_bytes: usize) -> RunConfig {
    RunConfig::new(n_pes, SchedConfig::new(kind, QueueConfig::new(2048, task_bytes)))
}

#[test]
fn uts_parallel_count_matches_sequential_oracle() {
    let params = UtsParams::geo_small(6);
    let expected = params.sequential_count();
    assert!(expected.nodes > 100, "tree is nontrivial: {expected:?}");
    for kind in [QueueKind::Sws, QueueKind::Sdc] {
        for n_pes in [1, 2, 4, 8] {
            let w = UtsWorkload::new(params);
            let report = run_workload(&cfg(kind, n_pes, 48), &w);
            assert_eq!(
                report.total_tasks(),
                expected.nodes,
                "{kind:?} × {n_pes} PEs"
            );
            assert_eq!(w.nodes_visited(), expected.nodes);
        }
    }
}

#[test]
fn uts_binomial_matches_oracle() {
    let params = UtsParams::bin_small(64, 3);
    let expected = params.sequential_count();
    let w = UtsWorkload::new(params);
    let report = run_workload(&cfg(QueueKind::Sws, 6, 48), &w);
    assert_eq!(report.total_tasks(), expected.nodes);
}

#[test]
fn bpc_executes_exactly_its_task_graph() {
    let params = BpcParams::scaled(16, 12);
    for kind in [QueueKind::Sws, QueueKind::Sdc] {
        let w = BpcWorkload::new(params);
        let report = run_workload(&cfg(kind, 4, 32), &w);
        assert_eq!(report.total_tasks(), params.total_tasks(), "{kind:?}");
        assert_eq!(w.executed(), params.total_tasks());
    }
}

#[test]
fn bpc_producers_bounce_across_pes() {
    // The defining BPC behaviour: producers sit at the steal side, so
    // with several PEs the work front must spread — every PE executes a
    // decent share of consumers.
    let params = BpcParams::scaled(32, 16);
    let w = BpcWorkload::new(params);
    let report = run_workload(&cfg(QueueKind::Sws, 4, 32), &w);
    let total = report.total_tasks();
    for (pe, ws) in report.workers.iter().enumerate() {
        assert!(
            ws.tasks_executed > total / 16,
            "PE {pe} starved: {} of {total}",
            ws.tasks_executed
        );
    }
}

#[test]
fn flat_bag_disseminates_and_balances() {
    let w = FlatBag::new(400, 50_000, 24);
    let report = run_workload(&cfg(QueueKind::Sws, 8, 24), &w);
    assert_eq!(report.total_tasks(), 400);
    // Coarse independent tasks on 8 PEs should balance decently.
    assert!(
        report.parallel_efficiency() > 0.5,
        "efficiency {}",
        report.parallel_efficiency()
    );
}

#[test]
fn sws_beats_sdc_on_fine_grained_uts() {
    // The paper's headline (Fig. 8b): SWS wins clearly on fine-grained
    // UTS because steal latency dominates. Same tree, same seeds. (The
    // tree must be large enough that steal traffic, not startup noise,
    // dominates — ~25 k nodes at depth 10.)
    let params = UtsParams::geo_small(10);
    let uts_sws = UtsWorkload::new(params);
    let uts_sdc = UtsWorkload::new(params);
    let r_sws = run_workload(&cfg(QueueKind::Sws, 8, 48), &uts_sws);
    let r_sdc = run_workload(&cfg(QueueKind::Sdc, 8, 48), &uts_sdc);
    assert_eq!(r_sws.total_tasks(), r_sdc.total_tasks());
    assert!(
        r_sws.makespan_ns < r_sdc.makespan_ns,
        "SWS {} ns !< SDC {} ns",
        r_sws.makespan_ns,
        r_sdc.makespan_ns
    );
    // And steal time specifically is lower (Fig. 8e).
    assert!(
        r_sws.total_steal_ns() < r_sdc.total_steal_ns(),
        "steal time: SWS {} !< SDC {}",
        r_sws.total_steal_ns(),
        r_sdc.total_steal_ns()
    );
}

#[test]
fn virtual_runs_are_reproducible_across_invocations() {
    let run = || {
        let w = UtsWorkload::new(UtsParams::geo_small(6));
        let r = run_workload(&cfg(QueueKind::Sws, 5, 48), &w);
        (r.makespan_ns, r.total_steals(), r.total_search_ns())
    };
    assert_eq!(run(), run());
}

#[test]
fn token_ring_td_works_through_the_full_stack() {
    let params = UtsParams::geo_small(6);
    let expected = params.sequential_count().nodes;
    let mut c = cfg(QueueKind::Sws, 4, 48);
    c.sched = c.sched.with_td(TdKind::TokenRing);
    let w = UtsWorkload::new(params);
    let report = run_workload(&c, &w);
    assert_eq!(report.total_tasks(), expected);
}

#[test]
fn bfs_parallel_reachable_matches_oracle() {
    use sws::workloads::graph::{BfsWorkload, GraphParams};
    let g = GraphParams::small(4000, 11);
    let expected = g.sequential_reachable(0);
    assert!(expected > 100, "reachable set is nontrivial: {expected}");
    for kind in [QueueKind::Sws, QueueKind::Sdc] {
        for n_pes in [2, 4, 8] {
            let w = BfsWorkload::new(g, 0);
            let report = run_workload(&cfg(kind, n_pes, 24), &w);
            assert_eq!(
                w.vertices_visited(),
                expected,
                "{kind:?} × {n_pes}: every reachable vertex claimed once"
            );
            // Visit tasks ≥ claims (duplicates rejected via the atomic).
            assert!(report.total_tasks() >= expected);
        }
    }
}

#[test]
fn bfs_claims_are_exclusive_under_threaded_concurrency() {
    use sws::shmem::ExecMode;
    use sws::workloads::graph::{BfsWorkload, GraphParams};
    let g = GraphParams::small(2000, 23);
    let expected = g.sequential_reachable(5);
    let w = BfsWorkload::new(g, 5);
    let run_cfg = cfg(QueueKind::Sws, 4, 24);
    let _ = sws::sched::runner::run_workload_mode(
        &run_cfg,
        &w,
        ExecMode::Threaded {
            inject_latency: false,
        },
    );
    assert_eq!(w.vertices_visited(), expected, "exactly-once claims");
}
