//! Configuration-matrix conformance: every combination of queue kind,
//! stealval layout, steal policy, termination detector, damping, and
//! victim policy must execute the same workload to completion with the
//! oracle-exact task count. This is the "no configuration silently
//! breaks the protocol" safety net for the ablation switches.

use sws::core::steal_half::StealPolicy;
use sws::core::stealval::Layout;
use sws::prelude::*;
use sws::sched::VictimPolicy;
use sws::workloads::uts::{UtsParams, UtsWorkload};

#[test]
fn every_configuration_agrees_with_the_oracle() {
    let params = UtsParams::geo_small(8); // ~6k nodes: fast but nontrivial
    let expected = params.sequential_count().nodes;
    let mut checked = 0;

    for kind in [QueueKind::Sws, QueueKind::Sdc] {
        for layout in [Layout::Epochs, Layout::ValidBit] {
            for policy in [StealPolicy::Half, StealPolicy::One, StealPolicy::Quarter] {
                for td in [TdKind::Counter, TdKind::TokenRing] {
                    for damping in [true, false] {
                        // Layouts only affect SWS; skip the redundant
                        // SDC × ValidBit half of the matrix.
                        if kind == QueueKind::Sdc && layout == Layout::ValidBit {
                            continue;
                        }
                        let queue = QueueConfig::new(2048, 48)
                            .with_layout(layout)
                            .with_policy(policy);
                        let sched = SchedConfig::new(kind, queue)
                            .with_td(td)
                            .with_damping(damping)
                            .with_seed(0xC0DE);
                        let w = UtsWorkload::new(params);
                        let report = run_workload(&RunConfig::new(4, sched), &w);
                        assert_eq!(
                            report.total_tasks(),
                            expected,
                            "{kind:?}/{layout:?}/{policy:?}/{td:?}/damping={damping}"
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert_eq!(checked, 36, "full matrix exercised");
}

#[test]
fn victim_policies_agree_with_the_oracle() {
    let params = UtsParams::geo_small(8);
    let expected = params.sequential_count().nodes;
    for victim in [
        VictimPolicy::Uniform,
        VictimPolicy::Hierarchical {
            node_size: 4,
            local_pct: 80,
        },
        VictimPolicy::Hierarchical {
            node_size: 4,
            local_pct: 100,
        },
    ] {
        let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(2048, 48))
            .with_victim(victim);
        let mut cfg = RunConfig::new(8, sched);
        cfg.net = NetModel::edr_infiniband_nodes(4);
        let w = UtsWorkload::new(params);
        let report = run_workload(&cfg, &w);
        assert_eq!(report.total_tasks(), expected, "{victim:?}");
    }
}

#[test]
fn hierarchical_victims_shift_traffic_to_the_node() {
    // With node-aware costs, the local-80 policy must lower total
    // communication time relative to uniform on the same run.
    let params = UtsParams::geo_small(9);
    let run = |victim| {
        let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(4096, 48))
            .with_victim(victim);
        let mut cfg = RunConfig::new(16, sched);
        cfg.net = NetModel::edr_infiniband_nodes(8);
        run_workload(&cfg, &UtsWorkload::new(params))
    };
    let uniform = run(VictimPolicy::Uniform);
    let local = run(VictimPolicy::Hierarchical {
        node_size: 8,
        local_pct: 80,
    });
    assert_eq!(uniform.total_tasks(), local.total_tasks());
    assert!(
        local.total_steal_ns() < uniform.total_steal_ns(),
        "local {} !< uniform {}",
        local.total_steal_ns(),
        uniform.total_steal_ns()
    );
}
