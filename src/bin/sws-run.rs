//! `sws-run` — run SWS/SDC experiments from the command line.
//!
//! ```text
//! sws-run <workload> [options]
//!
//! workloads:
//!   uts        unbalanced tree search (geometric, scaled T1 family)
//!   bpc        bouncing producer-consumer
//!   flat       flat bag of independent tasks
//!
//! options:
//!   --pes N          number of PEs                     (default 8)
//!   --system S       sws | sdc | both                  (default both)
//!   --seed N         run seed                          (default 0xBA5E)
//!   --depth N        uts: tree depth | bpc: producers  (default 10 | 32)
//!   --consumers N    bpc: consumers per producer       (default 64)
//!   --tasks N        flat: task count                  (default 4096)
//!   --task-ns N      flat: task duration, ns           (default 50000)
//!   --nodes N        PEs per node for the topology     (default 1=flat)
//!   --capacity N     task-queue ring capacity, tasks   (default 16384)
//!   --gate G         safe | handoff: virtual-time gate (default safe)
//!   --engine         print engine wall-time/gate-traffic line
//!   --timeline       print per-PE activity strips (enables tracing)
//!   --histogram      print steal-volume and victim histograms (tracing)
//!   --json           machine-readable report to stdout
//!
//! telemetry (arms protocol capture; observation only):
//!   --assert-comms   stitch steal spans and assert the paper's
//!                    per-steal budget (SWS 3 ops / 2 blocking,
//!                    SDC 6 / 5); exit 1 on any violation
//!   --assert-steal-bound  assert the rooted-tree steal bound
//!                    (Σ steals won ≤ Σ budget accrued by the
//!                    advertisements/releases); exit 1 on violation.
//!                    Needs no capture: it reads the queue counters
//!   --metrics        print the merged metrics registry (text
//!                    exposition, or a JSON snapshot with --json)
//!   --sample N       capture only a seeded, deterministic 1-in-N
//!                    sample of steal attempts (arms capture); span
//!                    counts scale by N for full-capture estimates
//!   --contention     count per-site CAS wins/losses, RMWs, loads and
//!                    stores; print the site heat table aligned with
//!                    the ORDERINGS.md catalog
//!   --trace-out F    write a Chrome-trace / Perfetto JSON file with
//!                    one process per system, one track per PE, steal
//!                    spans as slices, and idle-PE / ring-occupancy /
//!                    in-flight counter tracks
//!
//! standalone modes:
//!   --conform        replay the deterministic conformance matrix
//!                    through the abstract protocol machines and exit
//!
//! service mode (flat and uts workloads; open-world arrivals):
//!   --serve          run as a persistent service: work arrives over
//!                    time on ingress PEs, the pool quiesces between
//!                    waves, and the report adds admission counters,
//!                    arrival-latency percentiles, and conservation
//!   --arrivals P     poisson | bursty | diurnal       (default poisson)
//!   --mean-gap N     mean (or intra-burst) arrival gap, ns (default 10000)
//!   --burst N        bursty: arrivals per burst        (default 64)
//!   --period N       bursty/diurnal: cycle period, ns  (default 200000)
//!   --amplitude P    diurnal: swing around base, pct   (default 50)
//!   --horizon N      arrival cutoff, virtual ns        (default 500000)
//!   --ingress N      ingress PE count (ranks 0..N)     (default 1)
//!   --admission A    block | defer | shed              (default block)
//!   --hwm P          admission high-water mark, pct of
//!                    ring capacity                     (default 100)
//!   --slo-p99 NS     fail (exit 1) if arrival-latency p99 exceeds NS
//!   --away PE:FROM:DUR   elastic membership: PE parks its queue at
//!                    FROM ns and rejoins after DUR ns (repeatable;
//!                    ingress PEs and PE 0 must stay)
//!
//! live telemetry (service mode; deterministic per seed):
//!   --snapshots F    write the sws-obs-snap/v1 JSONL snapshot stream
//!                    to F (tail it with `sws-top F --follow`); with
//!                    --system both, per-system files F.SDC / F.SWS
//!   --snap-interval N   virtual ns between snapshots (default 50000)
//!   --slo-alerts M   off | warn | fatal: rolling-window p99 burn-rate
//!                    alerting against --slo-p99 with fire/clear
//!                    hysteresis; fatal exits 1 if any alert fired
//!
//! fault injection (chaos runs; deterministic per seed):
//!   --drop-prob P    drop each remote op with probability P (0.0–1.0)
//!   --stall PE:FROM:DUR   stall PE for DUR ns starting at FROM ns
//!   --crash PE:AT    crash-stop PE at virtual time AT ns (PE 0 hosts
//!                    the termination counters and cannot crash)
//! ```

use sws::obs::{
    build_stream, check_comms, check_steal_bound, chrome_trace, contention_table,
    contention_to_json, report_to_json, steal_bound_to_json, stitch_report, stream_to_jsonl,
    AlertKind, Registry, SloPolicy, StealSpan, TraceRun,
};
use sws::prelude::*;
use sws::sched::trace::{
    render_timeline, steal_volume_histogram, steals_by_victim, Pow2Histogram,
};
use sws::workloads::arrivals::{ArrivalPattern, ArrivalPlan, FlatServe, UtsServe};
use sws::workloads::bpc::{BpcParams, BpcWorkload};
use sws::workloads::synth::FlatBag;
use sws::workloads::uts::{UtsParams, UtsWorkload};

#[derive(Debug)]
struct Args {
    workload: String,
    pes: usize,
    system: String,
    seed: u64,
    depth: u32,
    consumers: u32,
    tasks: u64,
    task_ns: u64,
    nodes: usize,
    capacity: usize,
    gate: GateMode,
    engine: bool,
    timeline: bool,
    histogram: bool,
    json: bool,
    assert_comms: bool,
    assert_steal_bound: bool,
    metrics: bool,
    sample: u32,
    contention: bool,
    trace_out: Option<String>,
    drop_prob: f64,
    stall: Option<(usize, u64, u64)>,
    crash: Option<(usize, u64)>,
    serve: bool,
    arrivals: String,
    mean_gap: u64,
    burst: u32,
    period: u64,
    amplitude: u32,
    horizon: u64,
    ingress: usize,
    admission: String,
    hwm: u32,
    slo_p99: Option<u64>,
    away: Vec<(usize, u64, u64)>,
    snapshots: Option<String>,
    snap_interval: u64,
    slo_alerts: String,
}

impl Args {
    /// Any telemetry consumer needs the per-op protocol capture armed
    /// (`--sample` without another consumer still captures — the
    /// sampled spans land in `--json`/`--metrics` surfaces).
    fn capture(&self) -> bool {
        self.assert_comms || self.metrics || self.trace_out.is_some() || self.sample > 1
    }

    fn faults_active(&self) -> bool {
        self.drop_prob > 0.0 || self.stall.is_some() || self.crash.is_some()
    }

    /// Flags meaningless outside `--serve` (only the unambiguous ones:
    /// the numeric knobs share defaults with batch mode).
    fn serve_flags_used(&self) -> bool {
        self.slo_p99.is_some()
            || !self.away.is_empty()
            || self.snapshots.is_some()
            || self.slo_alerts != "off"
    }

    /// Does this run record service snapshots? (A stream file or the
    /// alert engine both need the rows.)
    fn snapshots_armed(&self) -> bool {
        self.snapshots.is_some() || self.slo_alerts != "off"
    }
}

fn usage() -> ! {
    eprintln!("usage: sws-run <uts|bpc|flat> [--pes N] [--system sws|sdc|both] [--seed N]");
    eprintln!("       sws-run --conform");
    eprintln!("               [--depth N] [--consumers N] [--tasks N] [--task-ns N]");
    eprintln!("               [--nodes N] [--gate safe|handoff] [--engine] [--timeline] [--json]");
    eprintln!("               [--assert-comms] [--assert-steal-bound] [--metrics] [--trace-out FILE]");
    eprintln!("               [--sample N] [--contention]");
    eprintln!("               [--drop-prob P] [--stall PE:FROM:DUR] [--crash PE:AT]");
    eprintln!("               [--serve] [--arrivals poisson|bursty|diurnal] [--mean-gap N]");
    eprintln!("               [--burst N] [--period N] [--amplitude P] [--horizon N]");
    eprintln!("               [--ingress N] [--admission block|defer|shed] [--hwm P]");
    eprintln!("               [--slo-p99 NS] [--away PE:FROM:DUR]");
    eprintln!("               [--snapshots FILE] [--snap-interval NS] [--slo-alerts off|warn|fatal]");
    std::process::exit(2);
}

/// Parse `a:b[:c]` into numeric fields, dying with usage() on malformed
/// input.
fn split_nums(spec: &str, n: usize, flag: &str) -> Vec<u64> {
    let parts: Vec<u64> = spec
        .split(':')
        .map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("bad {flag} spec {spec:?}: expected {n} colon-separated integers");
                usage()
            })
        })
        .collect();
    if parts.len() != n {
        eprintln!("bad {flag} spec {spec:?}: expected {n} colon-separated integers");
        usage()
    }
    parts
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: String::new(),
        pes: 8,
        system: "both".into(),
        seed: 0xBA5E,
        depth: 0,
        consumers: 64,
        tasks: 4096,
        task_ns: 50_000,
        nodes: 1,
        capacity: 16384,
        gate: GateMode::default(),
        engine: false,
        timeline: false,
        histogram: false,
        json: false,
        assert_comms: false,
        assert_steal_bound: false,
        metrics: false,
        sample: 0,
        contention: false,
        trace_out: None,
        drop_prob: 0.0,
        stall: None,
        crash: None,
        serve: false,
        arrivals: "poisson".into(),
        mean_gap: 10_000,
        burst: 64,
        period: 200_000,
        amplitude: 50,
        horizon: 500_000,
        ingress: 1,
        admission: "block".into(),
        hwm: 100,
        slo_p99: None,
        away: Vec::new(),
        snapshots: None,
        snap_interval: 50_000,
        slo_alerts: "off".into(),
    };
    let mut it = std::env::args().skip(1);
    let Some(w) = it.next() else { usage() };
    args.workload = w;
    args.depth = match args.workload.as_str() {
        "uts" => 10,
        "bpc" => 32,
        "flat" => 0,
        _ => usage(),
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--pes" => args.pes = val("--pes").parse().unwrap_or_else(|_| usage()),
            "--system" => args.system = val("--system"),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--depth" => args.depth = val("--depth").parse().unwrap_or_else(|_| usage()),
            "--consumers" => {
                args.consumers = val("--consumers").parse().unwrap_or_else(|_| usage())
            }
            "--tasks" => args.tasks = val("--tasks").parse().unwrap_or_else(|_| usage()),
            "--task-ns" => args.task_ns = val("--task-ns").parse().unwrap_or_else(|_| usage()),
            "--nodes" => args.nodes = val("--nodes").parse().unwrap_or_else(|_| usage()),
            "--capacity" => {
                args.capacity = val("--capacity").parse().unwrap_or_else(|_| usage())
            }
            "--gate" => {
                args.gate = match val("--gate").as_str() {
                    "safe" => GateMode::SafeWindow,
                    "handoff" => GateMode::HandoffPerOp,
                    other => {
                        eprintln!("unknown gate {other} (expected safe|handoff)");
                        usage()
                    }
                }
            }
            "--engine" => args.engine = true,
            "--timeline" => args.timeline = true,
            "--histogram" => args.histogram = true,
            "--json" => args.json = true,
            "--assert-comms" => args.assert_comms = true,
            "--assert-steal-bound" => args.assert_steal_bound = true,
            "--metrics" => args.metrics = true,
            "--sample" => {
                args.sample = val("--sample").parse().unwrap_or_else(|_| usage());
                if args.sample < 2 {
                    eprintln!("--sample needs N >= 2 (1-in-N attempts captured)");
                    usage()
                }
            }
            "--contention" => args.contention = true,
            "--trace-out" => args.trace_out = Some(val("--trace-out")),
            "--drop-prob" => {
                args.drop_prob = val("--drop-prob").parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.drop_prob) {
                    eprintln!("--drop-prob must be in 0.0–1.0");
                    usage()
                }
            }
            "--stall" => {
                let p = split_nums(&val("--stall"), 3, "--stall");
                args.stall = Some((p[0] as usize, p[1], p[2]));
            }
            "--crash" => {
                let p = split_nums(&val("--crash"), 2, "--crash");
                args.crash = Some((p[0] as usize, p[1]));
            }
            "--serve" => args.serve = true,
            "--arrivals" => args.arrivals = val("--arrivals"),
            "--mean-gap" => {
                args.mean_gap = val("--mean-gap").parse().unwrap_or_else(|_| usage())
            }
            "--burst" => args.burst = val("--burst").parse().unwrap_or_else(|_| usage()),
            "--period" => args.period = val("--period").parse().unwrap_or_else(|_| usage()),
            "--amplitude" => {
                args.amplitude = val("--amplitude").parse().unwrap_or_else(|_| usage())
            }
            "--horizon" => {
                args.horizon = val("--horizon").parse().unwrap_or_else(|_| usage())
            }
            "--ingress" => {
                args.ingress = val("--ingress").parse().unwrap_or_else(|_| usage())
            }
            "--admission" => args.admission = val("--admission"),
            "--hwm" => args.hwm = val("--hwm").parse().unwrap_or_else(|_| usage()),
            "--slo-p99" => {
                args.slo_p99 =
                    Some(val("--slo-p99").parse().unwrap_or_else(|_| usage()))
            }
            "--away" => {
                let p = split_nums(&val("--away"), 3, "--away");
                args.away.push((p[0] as usize, p[1], p[2]));
            }
            "--snapshots" => args.snapshots = Some(val("--snapshots")),
            "--snap-interval" => {
                args.snap_interval =
                    val("--snap-interval").parse().unwrap_or_else(|_| usage());
                if args.snap_interval == 0 {
                    eprintln!("--snap-interval must be > 0 ns");
                    usage()
                }
            }
            "--slo-alerts" => {
                args.slo_alerts = val("--slo-alerts");
                if !matches!(args.slo_alerts.as_str(), "off" | "warn" | "fatal") {
                    eprintln!(
                        "unknown --slo-alerts mode {} (expected off|warn|fatal)",
                        args.slo_alerts
                    );
                    usage()
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    // Surface fault-plan mistakes as CLI errors, not runner panics.
    if let Some((pe, _)) = args.crash {
        if pe == 0 {
            eprintln!("--crash: PE 0 hosts the termination counters and cannot crash");
            usage()
        }
        if pe >= args.pes {
            eprintln!("--crash: PE {pe} out of range (--pes {})", args.pes);
            usage()
        }
    }
    if let Some((pe, _, _)) = args.stall {
        if pe >= args.pes {
            eprintln!("--stall: PE {pe} out of range (--pes {})", args.pes);
            usage()
        }
    }
    if args.serve {
        if !matches!(args.workload.as_str(), "flat" | "uts") {
            eprintln!("--serve supports the flat and uts workloads");
            usage()
        }
        if !(1..=args.pes).contains(&args.ingress) {
            eprintln!("--ingress must be 1..=pes (got {})", args.ingress);
            usage()
        }
        if !(1..=100).contains(&args.hwm) {
            eprintln!("--hwm must be 1..=100 percent (got {})", args.hwm);
            usage()
        }
        if let Err(e) = membership_plan(&args).validate(args.pes, args.ingress) {
            eprintln!("--away: {e}");
            usage()
        }
        if let Some((pe, _)) = args.crash {
            if pe < args.ingress {
                eprintln!("--crash: PE {pe} is an ingress PE; its arrival plan would be lost");
                usage()
            }
        }
        if args.slo_alerts != "off" && args.slo_p99.is_none() {
            eprintln!("--slo-alerts needs --slo-p99 NS as the objective");
            usage()
        }
    } else if args.serve_flags_used() {
        eprintln!("service flags require --serve");
        usage()
    }
    args
}

/// The elastic membership plan from the repeatable `--away` flags.
fn membership_plan(args: &Args) -> MembershipPlan {
    let mut plan = MembershipPlan::fixed();
    for &(pe, from, dur) in &args.away {
        plan = plan.away(pe, from, dur);
    }
    plan
}

/// One queue geometry per workload, shared between the runner and the
/// span stitcher (the stitcher decodes raw stealvals with this layout).
fn queue_config(args: &Args) -> QueueConfig {
    let task_bytes = match args.workload.as_str() {
        "uts" => 48,
        "bpc" => 32,
        _ => 24,
    };
    QueueConfig::new(args.capacity, task_bytes)
}

fn run_one(args: &Args, kind: QueueKind) -> RunReport {
    let mut sched = SchedConfig::new(kind, queue_config(args))
        .with_seed(args.seed)
        .with_sample_period(args.sample);
    // The trace exporter draws scheduler instants and the idle counter
    // from the event log, so --trace-out arms tracing too.
    sched.trace = args.timeline || args.histogram || args.trace_out.is_some();
    let mut cfg = RunConfig::new(args.pes, sched).with_gate(args.gate);
    if args.capture() {
        cfg = cfg.with_capture_proto();
    }
    if args.contention {
        cfg = cfg.with_profile_sites();
    }
    if args.nodes > 1 {
        cfg.net = NetModel::edr_infiniband_nodes(args.nodes);
    }
    if args.drop_prob > 0.0 || args.stall.is_some() || args.crash.is_some() {
        let mut plan = FaultPlan::seeded(args.seed ^ 0xFA17);
        if args.drop_prob > 0.0 {
            plan = plan.with_drop(OpClass::All, TargetSel::Any, args.drop_prob);
        }
        if let Some((pe, from, dur)) = args.stall {
            plan = plan.with_stall(pe, from, dur);
        }
        if let Some((pe, at)) = args.crash {
            plan = plan.with_crash(pe, at);
        }
        cfg = cfg.with_faults(plan);
    }
    if args.serve {
        let svc = service_config(args);
        let plan = arrival_plan(args);
        return match args.workload.as_str() {
            "flat" => run_service(
                &cfg,
                &svc,
                &FlatServe::new(plan, args.task_ns, args.ingress),
            ),
            "uts" => run_service(
                &cfg,
                &svc,
                &UtsServe::new(
                    UtsParams::geo_small(args.depth),
                    plan,
                    // Injected subtree roots claim a mid-tree depth so
                    // each arrival's fan-out stays bounded but irregular.
                    args.depth.saturating_sub(4).max(1),
                    args.ingress,
                ),
            ),
            _ => usage(),
        };
    }
    match args.workload.as_str() {
        "uts" => run_workload(&cfg, &UtsWorkload::new(UtsParams::geo_small(args.depth))),
        "bpc" => run_workload(
            &cfg,
            &BpcWorkload::new(BpcParams::scaled(args.consumers, args.depth)),
        ),
        "flat" => run_workload(&cfg, &FlatBag::new(args.tasks, args.task_ns, 24)),
        _ => usage(),
    }
}

/// The seeded arrival plan from the `--arrivals` family of flags.
fn arrival_plan(args: &Args) -> ArrivalPlan {
    let pattern = match args.arrivals.as_str() {
        "poisson" => ArrivalPattern::Poisson {
            mean_gap_ns: args.mean_gap,
        },
        "bursty" => ArrivalPattern::Bursty {
            burst: args.burst,
            gap_ns: args.mean_gap,
            period_ns: args.period,
        },
        "diurnal" => ArrivalPattern::Diurnal {
            base_gap_ns: args.mean_gap,
            period_ns: args.period,
            amplitude_pct: args.amplitude,
        },
        other => {
            eprintln!("unknown arrival pattern {other} (expected poisson|bursty|diurnal)");
            usage()
        }
    };
    ArrivalPlan {
        pattern,
        seed: args.seed ^ 0xA881,
        start_ns: 0,
        horizon_ns: args.horizon,
    }
}

fn service_config(args: &Args) -> ServiceConfig {
    let admission = match args.admission.as_str() {
        "block" => AdmissionPolicy::Block,
        "defer" => AdmissionPolicy::Defer,
        "shed" => AdmissionPolicy::Shed,
        other => {
            eprintln!("unknown admission policy {other} (expected block|defer|shed)");
            usage()
        }
    };
    let snap_interval = if args.snapshots_armed() {
        args.snap_interval
    } else {
        0
    };
    ServiceConfig::default()
        .with_admission(admission)
        .with_hwm_pct(args.hwm)
        .with_membership(membership_plan(args))
        .with_snapshot_interval(snap_interval)
}

/// The burn-rate alerting policy: `--slo-p99` is the objective; the
/// window and hysteresis thresholds are the library defaults.
fn slo_policy(args: &Args) -> SloPolicy {
    SloPolicy::default().with_slo_p99_ns(if args.slo_alerts == "off" {
        0
    } else {
        args.slo_p99.unwrap_or(0)
    })
}

/// Per-system snapshot file path: `--system both` writes `F.SDC` and
/// `F.SWS` so the streams (each with its own header) stay separate.
fn snap_path(base: &str, system: &str, multi: bool) -> String {
    if multi {
        format!("{base}.{system}")
    } else {
        base.to_string()
    }
}

fn main() {
    // `--conform` is a standalone mode: replay the conformance matrix
    // (captured production traces → abstract protocol machines) and
    // exit with the refinement verdict.
    if std::env::args().nth(1).as_deref() == Some("--conform") {
        let report = sws::check::conform::conform_all();
        print!("{}", report.render());
        std::process::exit(if report.ok() { 0 } else { 1 });
    }
    let args = parse_args();
    let kinds: Vec<QueueKind> = match args.system.as_str() {
        "sws" => vec![QueueKind::Sws],
        "sdc" => vec![QueueKind::Sdc],
        "both" => vec![QueueKind::Sdc, QueueKind::Sws],
        _ => usage(),
    };
    let mut reports = Vec::new();
    let mut spans: Vec<Vec<StealSpan>> = Vec::new();
    let mut comms_ok = true;
    let mut bound_ok = true;
    let mut slo_ok = true;
    let mut alerts_ok = true;
    let multi = kinds.len() > 1;
    for kind in kinds {
        let report = run_one(&args, kind);
        if args.serve {
            // A service run that loses or duplicates arrivals is wrong
            // no matter what it prints; fail loudly.
            if !report.arrival_conservation_ok() || report.arrivals_in_flight() != 0 {
                eprintln!(
                    "{}: arrival conservation violated: {} offered, {} admitted, {} shed, {} completed, {} in flight",
                    report.system,
                    report.total_offered(),
                    report.total_admitted(),
                    report.total_shed(),
                    report.completed_arrivals(),
                    report.arrivals_in_flight(),
                );
                std::process::exit(1);
            }
            if let Some(slo) = args.slo_p99 {
                let p99 = report.service_latency().p99();
                if p99 > slo {
                    eprintln!(
                        "{}: SLO violated: arrival-latency p99 {p99} ns > {slo} ns",
                        report.system
                    );
                    slo_ok = false;
                }
            }
            if args.snapshots_armed() {
                let policy = slo_policy(&args);
                let stream = build_stream(&report, &policy);
                if let Some(base) = &args.snapshots {
                    let path = snap_path(base, &report.system, multi);
                    let text = stream_to_jsonl(&report, &policy, &stream);
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("--snapshots: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    if !args.json {
                        println!(
                            "   snapshots: wrote {path} ({} frames, {} alerts; \
                             tail with `sws-top {path} --follow`)",
                            stream.frames.len(),
                            stream.alerts.len()
                        );
                    }
                }
                if args.slo_alerts != "off" {
                    for a in &stream.alerts {
                        eprintln!(
                            "{}: slo-alert {} at t={} ns: windowed p99 {} ns = \
                             {}% of SLO {} ns",
                            report.system,
                            a.kind.label(),
                            a.t_ns,
                            a.win_p99_ns,
                            a.burn_pct,
                            policy.slo_p99_ns
                        );
                    }
                    let fired = stream
                        .alerts
                        .iter()
                        .any(|a| a.kind == AlertKind::Fire);
                    if fired && args.slo_alerts == "fatal" {
                        alerts_ok = false;
                    }
                }
            }
        }
        let report_spans = if args.capture() {
            stitch_report(&report, &queue_config(&args))
        } else {
            Vec::new()
        };
        if args.json {
            println!("{}", report_to_json(&report));
            if args.assert_comms {
                let comm = check_comms(&report_spans, args.faults_active());
                comms_ok &= comm.ok();
                println!("{}", sws::obs::comm_report_to_json(&comm));
            }
            if args.assert_steal_bound {
                let bound = check_steal_bound(&report);
                bound_ok &= bound.ok();
                println!("{}", steal_bound_to_json(&bound));
            }
            if args.metrics {
                println!(
                    "{}",
                    Registry::from_report(&report, Some(&report_spans)).to_json()
                );
            }
            if args.contention {
                println!("{}", contention_to_json(&report));
            }
        } else {
            println!("{}", report.summary_line());
            if let Some(faults) = report.fault_summary_line() {
                println!("{faults}");
            }
            if let Some(service) = report.service_summary_line() {
                println!("{service}");
            }
            if args.engine {
                if let Some(engine) = report.engine_summary_line() {
                    println!("{engine}");
                }
            }
            if args.timeline {
                let per_pe: Vec<_> =
                    report.workers.iter().map(|w| w.events.clone()).collect();
                print!("{}", render_timeline(&per_pe, report.makespan_ns, 64));
            }
            if args.histogram {
                let all: Vec<_> = report
                    .workers
                    .iter()
                    .flat_map(|w| w.events.iter().copied())
                    .collect();
                let volumes = steal_volume_histogram(&all);
                let h = Pow2Histogram::from_samples(
                    volumes.iter().flat_map(|(&v, &c)| std::iter::repeat_n(v, c as usize)),
                );
                println!("   steal volumes (pow2 buckets): {}", h.render());
                println!("   mean steal volume: {:.1} tasks", h.mean());
                let victims = steals_by_victim(&all);
                let hottest = victims.iter().max_by_key(|(_, &c)| c);
                if let Some((pe, c)) = hottest {
                    println!(
                        "   hottest victim: PE {pe} fed {c} of {} steals",
                        victims.values().sum::<u64>()
                    );
                }
            }
            if args.assert_comms {
                let comm = check_comms(&report_spans, args.faults_active());
                comms_ok &= comm.ok();
                print!("{}", comm.render());
            }
            if args.assert_steal_bound {
                let bound = check_steal_bound(&report);
                bound_ok &= bound.ok();
                print!("{}", bound.render());
            }
            if args.metrics {
                print!(
                    "{}",
                    Registry::from_report(&report, Some(&report_spans)).render_text()
                );
            }
            if args.contention {
                print!("{}", contention_table(&report));
            }
            if args.sample > 1 {
                println!(
                    "   sampling: 1-in-{} steal attempts captured ({} of {}; \
                     scale span counts by the period)",
                    report.sample_period().max(1),
                    report.total_sampled_attempts(),
                    report.total_steal_attempts()
                );
            }
        }
        reports.push(report);
        spans.push(report_spans);
    }
    if !args.json && reports.len() == 2 {
        let (sdc, sws) = (&reports[0], &reports[1]);
        println!(
            "SWS vs SDC: runtime {:+.1}%, steal time {:.2}x lower, search {:.2}x lower",
            (sdc.makespan_ns as f64 / sws.makespan_ns as f64 - 1.0) * 100.0,
            sdc.total_steal_ns() as f64 / sws.total_steal_ns().max(1) as f64,
            sdc.total_search_ns() as f64 / sws.total_search_ns().max(1) as f64,
        );
    }
    if let Some(path) = &args.trace_out {
        let runs: Vec<TraceRun> = reports
            .iter()
            .zip(&spans)
            .map(|(report, spans)| TraceRun { report, spans })
            .collect();
        let text = chrome_trace(&runs);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("--trace-out: cannot write {path}: {e}");
            std::process::exit(1);
        }
        if !args.json {
            println!(
                "trace: wrote {path} ({} bytes; open at ui.perfetto.dev)",
                text.len()
            );
        }
    }
    // Print every failed assertion before exiting, so a run that
    // trips several (e.g. hard SLO check + burn-rate alerts) shows
    // the full diagnosis in one pass.
    if !comms_ok {
        eprintln!("--assert-comms: per-steal budget violated (see report above)");
    }
    if !bound_ok {
        eprintln!("--assert-steal-bound: rooted-tree steal bound violated (see report above)");
    }
    if !slo_ok {
        eprintln!("--slo-p99: latency objective violated (see report above)");
    }
    if !alerts_ok {
        eprintln!("--slo-alerts=fatal: burn-rate alerts fired (see above)");
    }
    if !(comms_ok && bound_ok && slo_ok && alerts_ok) {
        std::process::exit(1);
    }
}
