//! # SWS — Structured-atomic Work Stealing
//!
//! A Rust reproduction of *Optimizing Work Stealing Communication with
//! Structured Atomic Operations* (Cartier, Dinan & Larkins, ICPP 2021):
//! a PGAS work-stealing runtime in which a steal operation completes in
//! a **single blocking remote atomic** plus one task copy and one
//! passive completion signal — half the communication of the
//! conventional lock-based protocol.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`shmem`] — the simulated OpenSHMEM substrate: symmetric heap,
//!   one-sided operations, remote atomics, collectives, a network cost
//!   model, and a deterministic virtual-time execution engine;
//! * [`task`] — portable task descriptors and the task registry;
//! * [`core`] — the queues: packed [`core::stealval`] metadata,
//!   steal-half arithmetic, the SWS queue (completion epochs, damping
//!   support) and the Scioto SDC baseline;
//! * [`sched`] — the work-first scheduler, victim selection, steal
//!   damping, termination detection, and the experiment runner;
//! * [`workloads`] — UTS (over a from-scratch SHA-1), BPC, and
//!   synthetic tasks;
//! * [`check`] — the bounded model checker, ordering audit, protocol
//!   lint, and the trace-conformance (refinement) checker;
//! * [`obs`] — observability: steal spans stitched from captured
//!   protocol events, per-steal communication accounting against the
//!   paper's op budgets, a sharded metrics registry, and a
//!   Chrome-trace / Perfetto exporter.
//!
//! ## Quickstart
//!
//! ```
//! use sws::prelude::*;
//!
//! // 8 simulated PEs execute an unbalanced tree search, SWS queues.
//! let params = sws::workloads::uts::UtsParams::geo_small(5);
//! let expected = params.sequential_count().nodes;
//! let workload = sws::workloads::uts::UtsWorkload::new(params);
//! let cfg = RunConfig::new(8, SchedConfig::new(QueueKind::Sws, QueueConfig::new(1024, 48)));
//! let report = run_workload(&cfg, &workload);
//! assert_eq!(report.total_tasks(), expected);
//! println!("{}", report.summary_line());
//! ```

pub use sws_check as check;
pub use sws_core as core;
pub use sws_obs as obs;
pub use sws_sched as sched;
pub use sws_shmem as shmem;
pub use sws_task as task;
pub use sws_workloads as workloads;

/// The common imports for running experiments.
pub mod prelude {
    pub use sws_core::{QueueConfig, SdcQueue, StealOutcome, StealQueue, SwsQueue};
    pub use sws_sched::{
        run_service, run_workload, AdmissionPolicy, FaultToleranceConfig,
        MembershipPlan, QueueKind, RunConfig, RunReport, SchedConfig,
        ServiceConfig, TaskCtx, TdKind, Workload,
    };
    pub use sws_shmem::{
        run_world, EngineStats, ExecMode, FaultPlan, GateMode, NetModel,
        OpClass, RetryPolicy, ShmemCtx, TargetSel, WorldConfig,
    };
    pub use sws_task::{PayloadReader, PayloadWriter, TaskDescriptor, TaskRegistry};
}
