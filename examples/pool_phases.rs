//! Embedding task pools in a larger SPMD program: alternate pool phases
//! with the program's own one-sided communication — the shape of a real
//! Scioto/SWS application (paper §2.1's task-pool model).
//!
//! ```text
//! cargo run --release --example pool_phases -- [pes]
//! ```
//!
//! Phase 1 builds per-PE partial histograms of an unbalanced tree's leaf
//! depths via the task pool; between phases the PEs combine them with
//! plain one-sided reductions; phase 2 re-traverses only the deepest
//! subtrees. No phase needs a lock anywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sws::prelude::*;
use sws::sched::pool::TaskPool;
use sws::workloads::sha1::{spawn_child, DIGEST_BYTES};
use sws::workloads::uts::{UtsParams, UTS_FN};

fn main() {
    let pes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("pes must be an integer"))
        .unwrap_or(6);

    let params = UtsParams::geo_small(9);
    let oracle = params.sequential_count();
    println!(
        "tree: {} nodes, {} leaves, depth {}",
        oracle.nodes, oracle.leaves, oracle.max_depth
    );

    let deep_leaves = Arc::new(AtomicU64::new(0));
    let deep_leaves2 = Arc::clone(&deep_leaves);

    let out = run_world(WorldConfig::virtual_time(pes, 1 << 18), move |ctx| {
        // ---- Phase 1: count leaves per depth through the task pool ----
        let depth_hist = Arc::new(AtomicU64::new(0)); // packed: leaves at max depth
        let mut reg: TaskRegistry<TaskCtx> = TaskRegistry::new();
        {
            let params = params;
            let hist = Arc::clone(&depth_hist);
            reg.register(UTS_FN, move |tctx, payload| {
                let mut r = PayloadReader::new(payload);
                let state: [u8; DIGEST_BYTES] = r.bytes();
                let depth = r.u32();
                let n = params.num_children(&state, depth);
                tctx.compute(params.node_ns);
                if n == 0 && depth >= 8 {
                    hist.fetch_add(1, Ordering::Relaxed); // a deep leaf
                }
                for i in 0..n {
                    tctx.spawn(UtsParams::node_task(&spawn_child(&state, i), depth + 1));
                }
            });
        }
        let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(8192, 48));
        let mut pool = TaskPool::create(ctx, &reg, sched);
        if ctx.my_pe() == 0 {
            pool.add_task(UtsParams::node_task(&params.root(), 0));
        }
        let stats = pool.process();

        // ---- Between phases: combine with plain one-sided collectives ----
        let my_deep = depth_hist.load(Ordering::Relaxed);
        let total_deep = ctx.reduce_sum_u64(my_deep);
        let max_tasks = ctx.reduce_max_u64(stats.tasks_executed);
        if ctx.my_pe() == 0 {
            deep_leaves2.store(total_deep, Ordering::Relaxed);
            println!(
                "phase 1: {} deep leaves found; busiest PE executed {} tasks",
                total_deep, max_tasks
            );
        }
        ctx.barrier_all();
        (stats.tasks_executed, total_deep)
    })
    .unwrap();

    let total_tasks: u64 = out.results.iter().map(|&(t, _)| t).sum();
    assert_eq!(total_tasks, oracle.nodes, "phase 1 visited every node once");
    let agreed = out.results.iter().all(|&(_, d)| d == out.results[0].1);
    assert!(agreed, "every PE saw the same reduction");
    println!(
        "done: {} tasks across {} PEs, {} deep leaves (reduction agreed everywhere)",
        total_tasks,
        pes,
        deep_leaves.load(Ordering::Relaxed)
    );
}
