//! Bouncing Producer-Consumer, SWS vs SDC side by side.
//!
//! ```text
//! cargo run --release --example bpc -- [consumers] [depth] [pes]
//! ```
//!
//! Defaults: 64 consumers per producer, 32 producer generations, 8 PEs —
//! the paper's §5.2.1 workload scaled to in-process size while keeping
//! its shape (coarse consumer tasks, producers bouncing between PEs via
//! the steal side of the queue).

use sws::prelude::*;
use sws::workloads::bpc::{BpcParams, BpcWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let consumers: u32 = args
        .next()
        .map(|s| s.parse().expect("consumers must be an integer"))
        .unwrap_or(64);
    let depth: u32 = args
        .next()
        .map(|s| s.parse().expect("depth must be an integer"))
        .unwrap_or(32);
    let pes: usize = args
        .next()
        .map(|s| s.parse().expect("pes must be an integer"))
        .unwrap_or(8);

    let params = BpcParams::scaled(consumers, depth);
    println!(
        "BPC: {} producers × {} consumers = {} tasks, avg task {:.2} ms",
        depth,
        consumers,
        params.total_tasks(),
        params.avg_task_ns() / 1e6
    );
    println!("running on {pes} PEs (virtual time, EDR-IB network model)\n");

    for kind in [QueueKind::Sdc, QueueKind::Sws] {
        let sched = SchedConfig::new(kind, QueueConfig::new(4096, 32));
        let cfg = RunConfig::new(pes, sched);
        let w = BpcWorkload::new(params);
        let report = run_workload(&cfg, &w);
        assert_eq!(report.total_tasks(), params.total_tasks());
        println!("{}", report.summary_line());

        // How far did the work front travel? Count PEs that executed a
        // producer-sized share of tasks.
        let active = report
            .workers
            .iter()
            .filter(|w| w.tasks_executed > 0)
            .count();
        println!("   {active}/{pes} PEs executed work");
    }
}
