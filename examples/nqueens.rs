//! N-queens as a user-written task-pool application.
//!
//! ```text
//! cargo run --release --example nqueens -- [n] [pes]
//! ```
//!
//! Demonstrates writing a custom [`Workload`] against the public API: an
//! irregular backtracking search decomposed into one task per partial
//! placement, load-balanced by stealing. Solution counts are aggregated
//! through a plain shared counter (host-side instrumentation), and the
//! result is checked against the classic sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sws::prelude::*;

const NQ_FN: u16 = 40;

/// Board state: n, row, and one u8 column per placed queen.
fn task_for(n: u8, placement: &[u8]) -> TaskDescriptor {
    let mut w = PayloadWriter::new();
    w.u8(n).u8(placement.len() as u8).bytes(placement);
    TaskDescriptor::new(NQ_FN, w.as_slice())
}

fn safe(placement: &[u8], col: u8) -> bool {
    let row = placement.len() as i32;
    placement.iter().enumerate().all(|(r, &c)| {
        let (r, c) = (r as i32, c as i32);
        c != col as i32 && (row - r) != (col as i32 - c).abs()
    })
}

struct NQueens {
    n: u8,
    /// Rows to expand as tasks before switching to sequential search
    /// (task granularity control).
    task_rows: u8,
    solutions: Arc<AtomicU64>,
}

impl NQueens {
    fn sequential_count(n: u8, placement: &mut Vec<u8>) -> u64 {
        if placement.len() == n as usize {
            return 1;
        }
        let mut total = 0;
        for col in 0..n {
            if safe(placement, col) {
                placement.push(col);
                total += Self::sequential_count(n, placement);
                placement.pop();
            }
        }
        total
    }
}

impl Workload for NQueens {
    fn register<'a>(&self, reg: &mut TaskRegistry<TaskCtx<'a>>) {
        let task_rows = self.task_rows;
        let solutions = Arc::clone(&self.solutions);
        reg.register(NQ_FN, move |tctx, payload| {
            let mut r = PayloadReader::new(payload);
            let n = r.u8();
            let placed = r.u8() as usize;
            let mut placement: Vec<u8> = (0..placed).map(|_| r.u8()).collect();

            if placed < task_rows as usize {
                // Expand one row as new tasks.
                tctx.compute(200 * n as u64);
                for col in 0..n {
                    if safe(&placement, col) {
                        placement.push(col);
                        tctx.spawn(task_for(n, &placement));
                        placement.pop();
                    }
                }
            } else {
                // Solve the rest sequentially inside this task; charge
                // virtual time proportional to the explored subtree.
                let before = std::time::Instant::now();
                let found = NQueens::sequential_count(n, &mut placement);
                solutions.fetch_add(found, Ordering::Relaxed);
                tctx.compute(before.elapsed().as_nanos().max(500) as u64);
            }
        });
    }

    fn seeds(&self, pe: usize, _n_pes: usize) -> Vec<TaskDescriptor> {
        if pe == 0 {
            vec![task_for(self.n, &[])]
        } else {
            Vec::new()
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u8 = args
        .next()
        .map(|s| s.parse().expect("n must be an integer"))
        .unwrap_or(10);
    let pes: usize = args
        .next()
        .map(|s| s.parse().expect("pes must be an integer"))
        .unwrap_or(8);

    // Known solution counts for n = 1..=13.
    const KNOWN: [u64; 14] = [
        1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712,
    ];

    let w = NQueens {
        n,
        task_rows: 3,
        solutions: Arc::new(AtomicU64::new(0)),
    };
    let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(4096, 32));
    let report = run_workload(&RunConfig::new(pes, sched), &w);

    let found = w.solutions.load(Ordering::Relaxed);
    println!(
        "{n}-queens: {found} solutions, {} tasks on {pes} PEs, makespan {:.3} ms, {} steals",
        report.total_tasks(),
        report.makespan_ns as f64 / 1e6,
        report.total_steals()
    );
    if (n as usize) < KNOWN.len() {
        assert_eq!(found, KNOWN[n as usize], "solution count mismatch");
        println!("verified against the classic sequence ✓");
    }
}
