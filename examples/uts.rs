//! Unbalanced Tree Search, SWS vs SDC side by side.
//!
//! ```text
//! cargo run --release --example uts -- [depth] [pes]
//! ```
//!
//! `depth` (default 10) selects the scaled T1-family tree; `pes`
//! (default 8) the number of simulated PEs. Prints the paper's key
//! metrics for both queue implementations on the identical tree.

use sws::prelude::*;
use sws::workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    let mut args = std::env::args().skip(1);
    let depth: u32 = args
        .next()
        .map(|s| s.parse().expect("depth must be an integer"))
        .unwrap_or(10);
    let pes: usize = args
        .next()
        .map(|s| s.parse().expect("pes must be an integer"))
        .unwrap_or(8);

    let params = UtsParams::geo_small(depth);
    let oracle = params.sequential_count();
    println!(
        "UTS geometric(linear) b0=4 depth={depth} seed={}: {} nodes, depth {}, {} leaves",
        params.seed, oracle.nodes, oracle.max_depth, oracle.leaves
    );
    println!("running on {pes} PEs (virtual time, EDR-IB network model)\n");

    let mut results = Vec::new();
    for kind in [QueueKind::Sdc, QueueKind::Sws] {
        let sched = SchedConfig::new(kind, QueueConfig::new(4096, 48));
        let cfg = RunConfig::new(pes, sched);
        let w = UtsWorkload::new(params);
        let report = run_workload(&cfg, &w);
        assert_eq!(report.total_tasks(), oracle.nodes);
        println!("{}", report.summary_line());
        results.push(report);
    }

    let (sdc, sws) = (&results[0], &results[1]);
    println!();
    println!(
        "SWS vs SDC: runtime {:+.1}%, steal-op latency {:.2}× lower, steal time {:.2}× lower, search time {:.2}× lower",
        (sdc.makespan_ns as f64 / sws.makespan_ns as f64 - 1.0) * 100.0,
        sdc.mean_steal_op_ns() / sws.mean_steal_op_ns(),
        sdc.total_steal_ns() as f64 / sws.total_steal_ns().max(1) as f64,
        sdc.total_search_ns() as f64 / sws.total_search_ns().max(1) as f64,
    );
}
