//! Sparse-graph traversal: an irregular PGAS application on the task
//! pool (visited flags claimed with remote atomics).
//!
//! ```text
//! cargo run --release --example bfs -- [vertices] [pes]
//! ```

use sws::prelude::*;
use sws::workloads::graph::{BfsWorkload, GraphParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let vertices: u64 = args
        .next()
        .map(|s| s.parse().expect("vertices must be an integer"))
        .unwrap_or(20_000);
    let pes: usize = args
        .next()
        .map(|s| s.parse().expect("pes must be an integer"))
        .unwrap_or(8);

    let g = GraphParams::small(vertices, 42);
    // Root at the highest-degree vertex among the first 256 so the
    // traversal actually fans out (low-degree roots may be dead ends).
    let root = (0..256.min(vertices))
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    let expected = g.sequential_reachable(root);
    println!(
        "graph: {vertices} vertices, {}% hubs of degree {}, {} reachable from root {root}",
        g.hub_pct, g.hub_degree, expected
    );

    for kind in [QueueKind::Sdc, QueueKind::Sws] {
        let w = BfsWorkload::new(g, root);
        let sched = SchedConfig::new(kind, QueueConfig::new(16384, 24));
        let report = run_workload(&RunConfig::new(pes, sched), &w);
        assert_eq!(w.vertices_visited(), expected, "every vertex claimed once");
        println!(
            "{}  (visit tasks {} for {} claims — duplicates rejected by the remote atomic)",
            report.summary_line(),
            report.total_tasks(),
            expected
        );
    }
}
