//! Quickstart: run an unbalanced tree search on 8 simulated PEs with
//! the SWS queue and print the run report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sws::prelude::*;
use sws::workloads::uts::{UtsParams, UtsWorkload};

fn main() {
    // A ~25k-node unbalanced tree (the paper's T1 geometric family,
    // scaled down; see DESIGN.md for the scaling rationale).
    let params = UtsParams::geo_small(10);
    let oracle = params.sequential_count();
    println!(
        "tree: {} nodes, depth {}, {} leaves",
        oracle.nodes, oracle.max_depth, oracle.leaves
    );

    // 8 PEs, SWS queues (completion epochs + steal damping), virtual
    // time over an EDR-InfiniBand-like network model.
    let sched = SchedConfig::new(QueueKind::Sws, QueueConfig::new(2048, 48));
    let cfg = RunConfig::new(8, sched);

    let workload = UtsWorkload::new(params);
    let report = run_workload(&cfg, &workload);

    assert_eq!(report.total_tasks(), oracle.nodes, "every node visited once");
    println!("{}", report.summary_line());
    println!();
    println!("communication profile:");
    print!("{}", report.comm.table());
    println!(
        "mean steal operation: {:.2} µs over {} steals",
        report.mean_steal_op_ns() / 1e3,
        report.total_steals()
    );
}
