//! Trace the exact one-sided communications of a steal (paper Fig. 2).
//!
//! ```text
//! cargo run --release --example steal_trace
//! ```
//!
//! Sets up a two-PE world, lets PE 1 steal once from PE 0 under each
//! protocol, and prints the thief's per-operation deltas: SDC needs six
//! communications (five blocking), SWS three (two blocking).

use sws::prelude::*;
use sws::shmem::OpKind;

fn trace(name: &str, kind: QueueKind, cfg: QueueConfig) {
    let out = run_world(WorldConfig::virtual_time(2, 1 << 16), |ctx| {
        let mut q: Box<dyn StealQueue + '_> = match kind {
            QueueKind::Sdc => Box::new(SdcQueue::new(ctx, cfg)),
            QueueKind::Sws => Box::new(SwsQueue::new(ctx, cfg)),
        };
        if ctx.my_pe() == 0 {
            for i in 0..64u64 {
                q.enqueue(&TaskDescriptor::new(1, &i.to_le_bytes()));
            }
            q.release();
        }
        ctx.barrier_all();
        let before = ctx.stats();
        if ctx.my_pe() == 1 {
            let got = q.steal_from(0);
            assert!(matches!(got, StealOutcome::Got { .. }));
        }
        let delta = ctx.stats().since(&before);
        ctx.barrier_all();
        delta
    })
    .unwrap();

    let thief = &out.results[1];
    println!("{name} steal (thief-side operations):");
    for kind in [
        OpKind::AtomicCompareSwap,
        OpKind::AtomicFetchAdd,
        OpKind::Get,
        OpKind::Put,
        OpKind::AtomicSwap,
        OpKind::AtomicSet,
        OpKind::AtomicSetNbi,
        OpKind::AtomicAddNbi,
        OpKind::PutNbi,
    ] {
        let c = thief.count(kind);
        if c > 0 {
            println!(
                "   {:<12} ×{c}  ({} bytes{})",
                kind.label(),
                thief.bytes_of(kind),
                if kind.is_blocking() { ", blocking" } else { ", passive" }
            );
        }
    }
    println!(
        "   total: {} communications, {} blocking\n",
        thief.data_ops(),
        thief.blocking_ops()
    );
}

fn main() {
    let cfg = QueueConfig::new(256, 24);
    trace("SDC", QueueKind::Sdc, cfg);
    trace("SWS", QueueKind::Sws, cfg);
    println!("(cf. paper Fig. 2: SDC = 6 communications / 5 blocking; SWS = 3 / 2)");
}
